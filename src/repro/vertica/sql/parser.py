"""Recursive-descent SQL parser.

``parse_statement`` turns one SQL string into an AST node from
:mod:`repro.vertica.sql.ast_nodes`.  Expression parsing follows standard
SQL precedence: OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE <
additive < multiplicative < unary < primary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.vertica.errors import SqlError
from repro.vertica.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.sql.lexer import Token, tokenize
from repro.vertica.types import parse_type

_RESERVED_STOPWORDS = {
    "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "AS",
    "AND", "OR", "NOT", "IS", "IN", "BETWEEN", "LIKE", "VALUES", "SET",
    "USING", "AT", "ASC", "DESC", "BY", "HAVING", "UNION",
}


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def check(self, text: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind in ("IDENT", "OP") and token.text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            token = self.peek()
            raise SqlError(
                f"expected {text!r} but found {token.raw or 'end of input'!r} "
                f"at offset {token.pos} in: {self.sql!r}"
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "IDENT":
            raise SqlError(
                f"expected identifier, found {token.raw!r} at offset {token.pos}"
            )
        self.advance()
        return token.text

    def qualified_name(self) -> str:
        parts = [self.expect_ident()]
        while self.check("."):
            self.advance()
            parts.append(self.expect_ident())
        return ".".join(parts)

    def end(self) -> None:
        self.accept(";")
        token = self.peek()
        if token.kind != "EOF":
            raise SqlError(
                f"unexpected trailing input {token.raw!r} at offset {token.pos}"
            )

    # -- statements ------------------------------------------------------------
    def statement(self):
        token = self.peek()
        if token.kind != "IDENT":
            raise SqlError(f"cannot parse statement: {self.sql!r}")
        keyword = token.text
        handler = {
            "CREATE": self._create,
            "DROP": self._drop,
            "TRUNCATE": self._truncate,
            "ALTER": self._alter,
            "INSERT": self._insert,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "SELECT": self._select_statement,
            "AT": self._at_epoch_select,
            "EXPLAIN": self._explain,
            "PROFILE": self._profile,
            "ANALYZE": self._analyze,
            "COPY": self._copy,
            "BEGIN": self._begin,
            "START": self._begin,
            "COMMIT": self._commit,
            "ROLLBACK": self._rollback,
            "ABORT": self._rollback,
            "SET": self._set,
        }.get(keyword)
        if handler is None:
            raise SqlError(f"unsupported statement {keyword!r}")
        node = handler()
        self.end()
        return node

    def _create(self):
        self.expect("CREATE")
        or_replace = False
        if self.accept("OR"):
            self.expect("REPLACE")
            or_replace = True
        if self.accept("VIEW"):
            view = self.qualified_name()
            self.expect("AS")
            query = self._select()
            return ast.CreateView(view, query, or_replace=or_replace)
        self.expect("TABLE")
        if_not_exists = False
        if self.accept("IF"):
            self.expect("NOT")
            self.expect("EXISTS")
            if_not_exists = True
        table = self.qualified_name()
        self.expect("(")
        columns = []
        while True:
            name = self.expect_ident()
            type_text = self.expect_ident()
            if self.check("("):
                self.advance()
                length = self.advance().text
                self.expect(")")
                type_text = f"{type_text}({length})"
            elif type_text == "DOUBLE" and self.check("PRECISION"):
                self.advance()
            columns.append(ast.ColumnDef(name, parse_type(type_text)))
            if not self.accept(","):
                break
        self.expect(")")
        segmented_by: Optional[List[str]] = None
        unsegmented = False
        if self.accept("SEGMENTED"):
            self.expect("BY")
            self.expect("HASH")
            self.expect("(")
            segmented_by = [self.expect_ident()]
            while self.accept(","):
                segmented_by.append(self.expect_ident())
            self.expect(")")
            if self.accept("ALL"):
                self.expect("NODES")
        elif self.accept("UNSEGMENTED"):
            unsegmented = True
            if self.accept("ALL"):
                self.expect("NODES")
        return ast.CreateTable(
            table,
            columns,
            segmented_by=segmented_by,
            unsegmented=unsegmented,
            if_not_exists=if_not_exists,
        )

    def _drop(self):
        self.expect("DROP")
        is_view = False
        if self.accept("VIEW"):
            is_view = True
        else:
            self.expect("TABLE")
        if_exists = False
        if self.accept("IF"):
            self.expect("EXISTS")
            if_exists = True
        name = self.qualified_name()
        if is_view:
            return ast.DropView(name, if_exists=if_exists)
        return ast.DropTable(name, if_exists=if_exists)

    def _truncate(self):
        self.expect("TRUNCATE")
        self.expect("TABLE")
        return ast.TruncateTable(self.qualified_name())

    def _alter(self):
        self.expect("ALTER")
        self.expect("TABLE")
        table = self.qualified_name()
        self.expect("RENAME")
        self.expect("TO")
        return ast.RenameTable(table, self.qualified_name())

    def _insert(self):
        self.expect("INSERT")
        self.expect("INTO")
        table = self.qualified_name()
        columns: Optional[List[str]] = None
        if self.check("(") and self._looks_like_column_list():
            self.advance()
            columns = [self.expect_ident()]
            while self.accept(","):
                columns.append(self.expect_ident())
            self.expect(")")
        if self.accept("VALUES"):
            rows = [self._value_tuple()]
            while self.accept(","):
                rows.append(self._value_tuple())
            return ast.InsertValues(table, columns, rows)
        if self.check("SELECT") or self.check("AT"):
            return ast.InsertSelect(table, columns, self._select())
        raise SqlError("INSERT requires VALUES or SELECT")

    def _looks_like_column_list(self) -> bool:
        # Distinguish `INSERT INTO t (a, b) VALUES ...` from
        # `INSERT INTO t (SELECT ...)`.
        return self.peek(1).kind == "IDENT" and self.peek(1).text != "SELECT"

    def _value_tuple(self) -> List[Expression]:
        self.expect("(")
        values = [self.expression()]
        while self.accept(","):
            values.append(self.expression())
        self.expect(")")
        return values

    def _update(self):
        self.expect("UPDATE")
        table = self.qualified_name()
        self.expect("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self.expect_ident()
            self.expect("=")
            assignments.append((column, self.expression()))
            if not self.accept(","):
                break
        where = self.expression() if self.accept("WHERE") else None
        return ast.Update(table, assignments, where=where)

    def _delete(self):
        self.expect("DELETE")
        self.expect("FROM")
        table = self.qualified_name()
        where = self.expression() if self.accept("WHERE") else None
        return ast.Delete(table, where=where)

    def _at_epoch_select(self):
        return self._select()

    def _explain(self):
        self.expect("EXPLAIN")
        return ast.Explain(self._select())

    def _profile(self):
        self.expect("PROFILE")
        return ast.Profile(self._select())

    def _analyze(self):
        # ANALYZE <table> [WITH <n> BUCKETS]
        self.expect("ANALYZE")
        self.accept("STATISTICS")
        table = self.qualified_name()
        buckets: Optional[int] = None
        if self.accept("WITH"):
            token = self.peek()
            if token.kind != "NUMBER":
                raise SqlError(
                    f"expected a bucket count after WITH, found {token.raw!r} "
                    f"at offset {token.pos}"
                )
            self.advance()
            buckets = int(float(token.text))
            self.expect("BUCKETS")
        return ast.Analyze(table, buckets)

    def _select_statement(self):
        return self._select()

    def _select(self) -> ast.Select:
        at_epoch: Optional[int] = None
        if self.accept("AT"):
            self.expect("EPOCH")
            token = self.peek()
            if token.kind == "NUMBER":
                at_epoch = int(self.advance().text)
            elif self.accept("LATEST"):
                at_epoch = None
            else:
                raise SqlError("AT EPOCH requires a number or LATEST")
        self.expect("SELECT")
        items = [self._select_item()]
        while self.accept(","):
            items.append(self._select_item())
        source = None
        joins: List[ast.Join] = []
        if self.accept("FROM"):
            source = self._table_ref()
            while self.check("JOIN") or self.check("INNER"):
                self.accept("INNER")
                self.expect("JOIN")
                table = self._table_ref()
                self.expect("ON")
                condition = self.expression()
                joins.append(ast.Join(table, condition))
        where = self.expression() if self.accept("WHERE") else None
        group_by: List[Expression] = []
        having: Optional[Expression] = None
        if self.accept("GROUP"):
            self.expect("BY")
            group_by.append(self.expression())
            while self.accept(","):
                group_by.append(self.expression())
            if self.accept("HAVING"):
                having = self.expression()
        order_by: List[ast.OrderItem] = []
        if self.accept("ORDER"):
            self.expect("BY")
            while True:
                expression = self.expression()
                descending = False
                if self.accept("DESC"):
                    descending = True
                else:
                    self.accept("ASC")
                order_by.append(ast.OrderItem(expression, descending))
                if not self.accept(","):
                    break
        limit: Optional[int] = None
        if self.accept("LIMIT"):
            token = self.peek()
            if token.kind != "NUMBER":
                raise SqlError("LIMIT requires a number")
            limit = int(self.advance().text)
        return ast.Select(
            items,
            source,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            at_epoch=at_epoch,
        )

    def _table_ref(self) -> ast.TableRef:
        name = self.qualified_name()
        alias = ""
        if self.accept("AS"):
            alias = self.expect_ident()
        elif (self.peek().kind == "IDENT"
              and self.peek().text not in _RESERVED_STOPWORDS):
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def _select_item(self) -> ast.SelectItem:
        if self.check("*"):
            self.advance()
            return ast.SelectItem(star=True)
        token = self.peek()
        # Aggregate / UDF / builtin-function head?
        if token.kind == "IDENT" and self.check("(", offset=1):
            name = token.text
            if name in ast.AGGREGATE_NAMES:
                return self._aggregate_item(name)
            item = self._maybe_function_item(name)
            if item is not None:
                return self._with_alias(item)
        expression = self.expression()
        return self._with_alias(ast.SelectItem(expression=expression))

    def _with_alias(self, item: ast.SelectItem) -> ast.SelectItem:
        if self.accept("AS"):
            item.alias = self.expect_ident()
        elif (
            self.peek().kind == "IDENT"
            and self.peek().text not in _RESERVED_STOPWORDS
        ):
            item.alias = self.expect_ident()
        return item

    def _aggregate_item(self, name: str) -> ast.SelectItem:
        self.advance()  # function name
        self.expect("(")
        distinct = bool(self.accept("DISTINCT"))
        if self.check("*"):
            self.advance()
            self.expect(")")
            if name != "COUNT":
                raise SqlError(f"{name}(*) is not valid")
            return self._with_alias(
                ast.SelectItem(aggregate=name, aggregate_arg=None, distinct=distinct)
            )
        argument = self.expression()
        self.expect(")")
        return self._with_alias(
            ast.SelectItem(aggregate=name, aggregate_arg=argument, distinct=distinct)
        )

    def _maybe_function_item(self, name: str) -> Optional[ast.SelectItem]:
        """Parse ``name(args [USING PARAMETERS k=v, ...])``.

        Builtins without parameters fall through to plain expression
        parsing (returns None after rewinding); anything else becomes a
        UDF select item resolved against the registry at execution time.
        """
        start = self.pos
        self.advance()  # name
        self.expect("(")
        args: List[Expression] = []
        parameters: Dict[str, Any] = {}
        if not self.check(")"):
            while True:
                if self.check("USING"):
                    break
                args.append(self.expression())
                if not self.accept(","):
                    break
        if self.accept("USING"):
            self.expect("PARAMETERS")
            while True:
                key = self.expect_ident().lower()
                self.expect("=")
                parameters[key] = self._literal_value()
                if not self.accept(","):
                    break
        self.expect(")")
        try:
            FunctionCall(name, args)
            is_builtin = True
        except SqlError:
            is_builtin = False
        if is_builtin and not parameters:
            self.pos = start  # let the expression parser handle it
            return None
        return ast.SelectItem(udf=name, udf_args=args, parameters=parameters)

    def _literal_value(self) -> Any:
        expression = self.expression()
        if not isinstance(expression, Literal):
            raise SqlError("USING PARAMETERS values must be literals")
        return expression.value

    def _copy(self):
        self.expect("COPY")
        table = self.qualified_name()
        self.expect("FROM")
        source = "STDIN"
        if not self.accept("STDIN"):
            token = self.peek()
            if token.kind != "STRING":
                raise SqlError("COPY source must be STDIN or a file path string")
            source = self.advance().text
        file_format = "CSV"
        delimiter = ","
        reject_max: Optional[int] = None
        direct = False
        while self.peek().kind == "IDENT":
            if self.accept("WITH"):
                continue
            if self.accept("FORMAT"):
                file_format = self.expect_ident()
                if file_format not in ("CSV", "AVRO", "COLUMNAR"):
                    raise SqlError(f"unsupported COPY format {file_format!r}")
                continue
            if self.accept("DELIMITER"):
                token = self.peek()
                if token.kind != "STRING" or len(token.text) != 1:
                    raise SqlError("DELIMITER requires a one-character string")
                delimiter = self.advance().text
                continue
            if self.accept("REJECTMAX"):
                token = self.peek()
                if token.kind != "NUMBER":
                    raise SqlError("REJECTMAX requires a number")
                reject_max = int(self.advance().text)
                continue
            if self.accept("DIRECT"):
                direct = True
                continue
            raise SqlError(f"unexpected COPY option {self.peek().raw!r}")
        return ast.CopyStatement(
            table,
            source=source,
            file_format=file_format,
            delimiter=delimiter,
            reject_max=reject_max,
            direct=direct,
        )

    def _begin(self):
        self.advance()
        if not self.accept("TRANSACTION"):
            self.accept("WORK")
        return ast.BeginTransaction()

    def _commit(self):
        self.expect("COMMIT")
        if not self.accept("TRANSACTION"):
            self.accept("WORK")
        return ast.CommitTransaction()

    def _rollback(self):
        self.advance()
        if not self.accept("TRANSACTION"):
            self.accept("WORK")
        return ast.RollbackTransaction()

    def _set(self):
        # SET <option> [=|TO] <value>   (e.g. SET RESOURCE_POOL = 'batch')
        self.expect("SET")
        self.accept("SESSION")
        name = self.expect_ident()
        if not self.accept("="):
            self.accept("TO")
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            value: Any = token.text
        elif token.kind == "NUMBER":
            self.advance()
            value = token.text
        elif token.kind == "IDENT":
            value = self.expect_ident()
        else:
            raise SqlError(
                f"expected a value after SET {name}, found {token.raw!r} "
                f"at offset {token.pos}"
            )
        return ast.SetOption(name, value)

    # -- expressions ---------------------------------------------------------------
    def expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self.accept("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self.accept("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self.accept("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._additive()
        while True:
            if self.accept("IS"):
                negated = bool(self.accept("NOT"))
                self.expect("NULL")
                left = IsNull(left, negated=negated)
                continue
            negated = False
            if self.check("NOT") and self.peek(1).text in ("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
            if self.accept("IN"):
                self.expect("(")
                options = [self.expression()]
                while self.accept(","):
                    options.append(self.expression())
                self.expect(")")
                left = InList(left, options, negated=negated)
                continue
            if self.accept("BETWEEN"):
                low = self._additive()
                self.expect("AND")
                high = self._additive()
                between = Between(left, low, high)
                left = UnaryOp("NOT", between) if negated else between
                continue
            if self.accept("LIKE"):
                token = self.peek()
                if token.kind != "STRING":
                    raise SqlError("LIKE requires a string pattern")
                self.advance()
                left = Like(left, token.text, negated=negated)
                continue
            matched = False
            for op in ("=", "<>", "!=", "<=", ">=", "<", ">"):
                if self.check(op):
                    self.advance()
                    left = BinaryOp(op, left, self._additive())
                    matched = True
                    break
            if matched:
                continue
            return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            for op in ("+", "-", "||"):
                if self.check(op):
                    self.advance()
                    left = BinaryOp(op, left, self._multiplicative())
                    break
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            for op in ("*", "/", "%"):
                if self.check(op):
                    self.advance()
                    left = BinaryOp(op, left, self._unary())
                    break
            else:
                return left

    def _unary(self) -> Expression:
        if self.check("-") or self.check("+"):
            op = self.advance().text
            return UnaryOp(op, self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "STRING":
            self.advance()
            return Literal(token.text)
        if token.kind == "IDENT":
            keyword = token.text
            if keyword in _RESERVED_STOPWORDS:
                raise SqlError(
                    f"unexpected keyword {token.raw!r} at offset {token.pos}"
                )
            if keyword == "NULL":
                self.advance()
                return Literal(None)
            if keyword == "TRUE":
                self.advance()
                return Literal(True)
            if keyword == "FALSE":
                self.advance()
                return Literal(False)
            # Function call?
            if self.check("(", offset=1):
                self.advance()
                self.advance()
                args: List[Expression] = []
                if not self.check(")"):
                    args.append(self.expression())
                    while self.accept(","):
                        args.append(self.expression())
                self.expect(")")
                return FunctionCall(keyword, args)
            return ColumnRef(self.qualified_name())
        if self.accept("("):
            inner = self.expression()
            self.expect(")")
            return inner
        raise SqlError(
            f"unexpected token {token.raw or 'end of input'!r} at offset {token.pos}"
        )


def parse_statement(sql: str):
    """Parse one SQL statement into its AST node."""
    return _Parser(sql).statement()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone expression (used by tests and pushdown checks)."""
    parser = _Parser(sql)
    expression = parser.expression()
    parser.end()
    return expression
