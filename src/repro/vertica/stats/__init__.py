"""Table and column statistics for the cost-based optimizer.

Statistics are collected by a full scan of the committed data (``ANALYZE``,
or automatically at mergeout) and updated incrementally as ``COPY`` appends
rows.  They feed the optimizer's cardinality estimates: scan output rows,
filter selectivities, and join output sizes (which in turn pick the join
strategy and build side).

The numbers are advisory: an aborted transaction may leave the incremental
counters slightly high, and NDV/histograms only refresh on a full collect.
Correctness never depends on them -- only plan choice does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

DEFAULT_BUCKETS = 16

_NUMERIC_TYPES = (int, float)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, _NUMERIC_TYPES) and not isinstance(value, bool)


@dataclass
class HistogramBucket:
    """One equi-width bucket over ``[lo, hi)`` (last bucket is inclusive)."""

    lo: float
    hi: float
    count: int = 0


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    column: str
    row_count: int = 0
    null_count: int = 0
    ndv: int = 0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    histogram: List[HistogramBucket] = field(default_factory=list)

    @property
    def null_fraction(self) -> float:
        if self.row_count <= 0:
            return 0.0
        return self.null_count / self.row_count

    # -- incremental maintenance ---------------------------------------------------

    def observe(self, value: Any) -> None:
        """Fold one newly-loaded value into the running counters.

        Only row/null counts and min/max stay exact under incremental
        updates; NDV and the histogram refresh on the next full collect.
        """
        self.row_count += 1
        if value is None:
            self.null_count += 1
            return
        try:
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value
        except TypeError:
            pass  # mixed-type column snapshot; keep the old bounds

    # -- selectivity ---------------------------------------------------------------

    def equality_selectivity(self) -> float:
        if self.ndv <= 0:
            return 0.1
        return min(1.0, 1.0 / self.ndv)

    def range_selectivity(self, op: str, value: Any) -> float:
        """Estimated fraction of rows satisfying ``column <op> value``."""
        fraction = self._histogram_fraction(op, value)
        if fraction is not None:
            return fraction
        return 1.0 / 3.0

    def _histogram_fraction(self, op: str, value: Any) -> Optional[float]:
        if not self.histogram or not _is_numeric(value):
            return None
        total = sum(bucket.count for bucket in self.histogram)
        if total <= 0:
            return None
        below = 0.0  # estimated rows strictly below ``value``
        for bucket in self.histogram:
            if value >= bucket.hi:
                below += bucket.count
            elif value > bucket.lo:
                width = bucket.hi - bucket.lo
                if width > 0:
                    below += bucket.count * (value - bucket.lo) / width
        fraction_below = below / total
        if op in ("<", "<="):
            return min(1.0, fraction_below)
        if op in (">", ">="):
            return min(1.0, max(0.0, 1.0 - fraction_below))
        return None


@dataclass
class TableStats:
    """Statistics for one table, keyed into ``Catalog.statistics``."""

    table: str
    row_count: int = 0
    collected_epoch: int = 0
    buckets: int = DEFAULT_BUCKETS
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.upper())

    def observe_rows(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Incrementally fold newly-loaded rows (COPY path) into the stats."""
        count = 0
        for row in rows:
            count += 1
            for name, stats in self.columns.items():
                stats.observe(row.get(name))
        self.row_count += count


def _build_histogram(
    values: List[Any], buckets: int
) -> List[HistogramBucket]:
    numeric = [float(v) for v in values if _is_numeric(v)]
    if len(numeric) < 2 or buckets <= 0:
        return []
    lo, hi = min(numeric), max(numeric)
    if lo == hi:
        return [HistogramBucket(lo=lo, hi=hi, count=len(numeric))]
    width = (hi - lo) / buckets
    out = [
        HistogramBucket(lo=lo + i * width, hi=lo + (i + 1) * width)
        for i in range(buckets)
    ]
    for v in numeric:
        index = int((v - lo) / width)
        if index >= buckets:  # v == hi lands in the last (inclusive) bucket
            index = buckets - 1
        out[index].count += 1
    return out


def _column_stats(
    name: str, values: List[Any], buckets: int
) -> ColumnStats:
    non_null = [v for v in values if v is not None]
    stats = ColumnStats(
        column=name,
        row_count=len(values),
        null_count=len(values) - len(non_null),
        ndv=len(set(non_null)),
    )
    if non_null:
        try:
            stats.min_value = min(non_null)
            stats.max_value = max(non_null)
        except TypeError:
            pass  # heterogeneous values; leave bounds unknown
        stats.histogram = _build_histogram(non_null, buckets)
    return stats


def collect_table_stats(
    database: Any, table_name: str, buckets: int = DEFAULT_BUCKETS
) -> TableStats:
    """Full-scan statistics collection for one table (the ANALYZE path).

    Reads committed rows at the current epoch from the initiator's view of
    the cluster; does not charge any query cost.
    """
    table = database.catalog.table(table_name)
    snapshot = database.epochs.current
    column_names: List[str] = list(table.column_names())
    values: Dict[str, List[Any]] = {name: [] for name in column_names}
    row_count = 0
    for scan_row in database.engine.scan(
        table.name,
        snapshot,
        txn=None,
        initiator=database.node_names[0],
        cost=None,
    ):
        row_count += 1
        for name in column_names:
            values[name].append(scan_row.data.get(name))
    stats = TableStats(
        table=table.name,
        row_count=row_count,
        collected_epoch=snapshot,
        buckets=buckets,
        columns={
            name: _column_stats(name, values[name], buckets)
            for name in column_names
        },
    )
    return stats


def update_stats_for_load(
    database: Any, table_name: str, rows: Iterable[Dict[str, Any]]
) -> None:
    """Fold freshly-loaded rows into existing stats (COPY/insert hook).

    A no-op when the table has never been analyzed: the first full collect
    establishes the baseline that incremental updates then maintain.
    """
    stats = database.catalog.statistics.get(table_name.upper())
    if stats is None:
        return
    stats.observe_rows(rows)


def system_table_rows(
    statistics: Dict[str, TableStats],
) -> Tuple[List[str], List[Dict[str, Any]]]:
    """Rows for ``V_CATALOG.COLUMN_STATISTICS``."""
    columns = [
        "TABLE_NAME",
        "COLUMN_NAME",
        "ROW_COUNT",
        "NULL_COUNT",
        "NDV",
        "MIN_VALUE",
        "MAX_VALUE",
        "HISTOGRAM_BUCKETS",
        "COLLECTED_EPOCH",
    ]
    rows: List[Dict[str, Any]] = []
    for table_name in sorted(statistics):
        table_stats = statistics[table_name]
        for column_name, cs in table_stats.columns.items():
            rows.append(
                {
                    "TABLE_NAME": table_name,
                    "COLUMN_NAME": column_name,
                    "ROW_COUNT": cs.row_count,
                    "NULL_COUNT": cs.null_count,
                    "NDV": cs.ndv,
                    "MIN_VALUE": cs.min_value,
                    "MAX_VALUE": cs.max_value,
                    "HISTOGRAM_BUCKETS": len(cs.histogram),
                    "COLLECTED_EPOCH": table_stats.collected_epoch,
                }
            )
    return columns, rows
