"""Estimated-vs-actual feedback from executed queries into the optimizer.

PROFILE reconciles every operator's ``estimated_rows`` against its
observed ``rows_out``; this module is where those deltas land.  A
:class:`CorrectionStore` keeps one multiplicative correction factor per
table — the blended ratio of actual to estimated scan output — and the
cardinality estimator multiplies its base-table estimates by that
factor, so a query whose stats were stale the first time around gets a
strictly better-estimated plan on the next execution.

Two design points keep the loop stable:

- Corrections are an EWMA blend, clamped to ``[MIN_FACTOR, MAX_FACTOR]``,
  so one aberrant run cannot swing the estimator by more than the blend
  weight allows and repeated accurate runs decay the factor back to 1.
- The store carries a monotonic ``version`` that only advances when a
  factor moves *materially* (more than ``MATERIAL_CHANGE`` relative).
  The plan cache keys on that version: the initial plan stays cached and
  unpoisoned, corrected plans get their own entries, and well-estimated
  steady-state workloads do not churn the cache at all.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro import telemetry

#: EWMA weight given to the newest observation when blending factors.
BLEND_WEIGHT = 0.5

#: corrections are clamped into [1/MAX_CORRECTION, MAX_CORRECTION]
MAX_CORRECTION = 1000.0

#: relative factor movement below which ``version`` does not advance
MATERIAL_CHANGE = 0.05

#: observations are ignored entirely below this estimate (nothing to fix)
MIN_ESTIMATED_ROWS = 1


class CorrectionStore:
    """Per-table multiplicative cardinality corrections with a version."""

    def __init__(self, name: str = "vertica.stats.feedback"):
        self.name = name
        self._factors: Dict[str, float] = {}
        self.version = 0
        self.recorded = 0

    def factor(self, table_name: str) -> float:
        """The correction multiplier for ``table_name`` (1.0 when unknown)."""
        return self._factors.get(table_name, 1.0)

    def record(self, table_name: str, estimated: int, actual: int) -> bool:
        """Blend one estimated-vs-actual scan observation into the store.

        Returns True when the table's factor moved materially (and the
        store version advanced), False otherwise.
        """
        if estimated is None or estimated < MIN_ESTIMATED_ROWS:
            return False
        observed_ratio = max(actual, 0) / float(estimated)
        observed_ratio = min(max(observed_ratio, 1.0 / MAX_CORRECTION),
                             MAX_CORRECTION)
        previous = self._factors.get(table_name, 1.0)
        blended = (1.0 - BLEND_WEIGHT) * previous + BLEND_WEIGHT * observed_ratio
        self._factors[table_name] = blended
        self.recorded += 1
        reference = max(abs(previous), 1e-9)
        if abs(blended - previous) / reference <= MATERIAL_CHANGE:
            return False
        self.version += 1
        telemetry.counter(f"{self.name}.corrections").inc()
        telemetry.gauge(f"{self.name}.version").set(self.version)
        return True

    def forget(self, table_name: str) -> None:
        """Drop a table's correction (fresh ANALYZE supersedes feedback)."""
        if table_name in self._factors:
            del self._factors[table_name]
            self.version += 1

    def snapshot(self) -> Dict[str, float]:
        return dict(self._factors)

    def items(self) -> Tuple[Tuple[str, float], ...]:
        return tuple(sorted(self._factors.items()))

    def clear(self) -> None:
        if self._factors:
            self.version += 1
        self._factors.clear()
