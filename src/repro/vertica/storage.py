"""Columnar storage: ROS containers and per-node stores.

Vertica keeps committed data in Read Optimized Storage (ROS) containers —
immutable, column-major batches tagged with the epoch that committed them
— and marks deletions in per-container *delete vectors* rather than
rewriting data (§2.1.1; Lamb et al., VLDB'12).  Visibility at a snapshot
epoch ``e`` is therefore: container committed at or before ``e``, row not
deleted, or deleted strictly after ``e``.

Uncommitted writes live in a per-transaction WOS (Write Optimized
Storage) buffer that becomes one ROS container per (table, node) at
commit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.vertica.errors import CatalogError


class RosContainer:
    """One immutable committed batch of rows on one node."""

    __slots__ = ("column_names", "columns", "commit_epoch", "delete_epochs",
                 "row_hashes")

    def __init__(
        self,
        column_names: Sequence[str],
        columns: Sequence[List[Any]],
        commit_epoch: int,
        row_hashes: Optional[List[int]] = None,
    ):
        if len(column_names) != len(columns):
            raise CatalogError("column name/data arity mismatch in ROS container")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise CatalogError("ragged columns in ROS container")
        self.column_names = list(column_names)
        self.columns = [list(c) for c in columns]
        self.commit_epoch = commit_epoch
        nrows = len(columns[0]) if columns else 0
        #: 0 = live; otherwise the epoch at which the row was deleted
        self.delete_epochs: List[int] = [0] * nrows
        self.row_hashes = list(row_hashes) if row_hashes is not None else [0] * nrows

    @property
    def nrows(self) -> int:
        return len(self.delete_epochs)

    def live_rows(self, snapshot_epoch: int) -> Iterator[int]:
        """Indices of rows visible at ``snapshot_epoch``."""
        if self.commit_epoch > snapshot_epoch:
            return
        for index, delete_epoch in enumerate(self.delete_epochs):
            if delete_epoch == 0 or delete_epoch > snapshot_epoch:
                yield index

    def row(self, index: int) -> Dict[str, Any]:
        return {name: column[index]
                for name, column in zip(self.column_names, self.columns)}

    def row_tuple(self, index: int) -> Tuple[Any, ...]:
        return tuple(column[index] for column in self.columns)


class WosBuffer:
    """Per-transaction, per-(table, node) staged inserts (row-major)."""

    __slots__ = ("column_names", "rows", "row_hashes")

    def __init__(self, column_names: Sequence[str]):
        self.column_names = list(column_names)
        self.rows: List[List[Any]] = []
        self.row_hashes: List[int] = []

    @property
    def nrows(self) -> int:
        return len(self.rows)

    def append(self, row: Sequence[Any], row_hash: int = 0) -> None:
        if len(row) != len(self.column_names):
            raise CatalogError(
                f"row arity {len(row)} does not match {len(self.column_names)} columns"
            )
        self.rows.append(list(row))
        self.row_hashes.append(row_hash)

    def to_container(self, commit_epoch: int) -> RosContainer:
        columns: List[List[Any]] = [[] for __ in self.column_names]
        for row in self.rows:
            for column, value in zip(columns, row):
                column.append(value)
        return RosContainer(
            self.column_names, columns, commit_epoch, row_hashes=self.row_hashes
        )


class NodeStorage:
    """All committed containers held by one node, keyed by table name."""

    def __init__(self, node_name: str):
        self.node_name = node_name
        self.containers: Dict[str, List[RosContainer]] = {}
        #: k-safety replicas of other nodes' segments: table -> buddy containers
        self.replicas: Dict[str, List[RosContainer]] = {}

    def add_container(self, table: str, container: RosContainer) -> None:
        self.containers.setdefault(table, []).append(container)

    def add_replica(self, table: str, container: RosContainer) -> None:
        self.replicas.setdefault(table, []).append(container)

    def table_containers(self, table: str) -> List[RosContainer]:
        return self.containers.get(table, [])

    def replica_containers(self, table: str) -> List[RosContainer]:
        return self.replicas.get(table, [])

    def drop_table(self, table: str) -> None:
        self.containers.pop(table, None)
        self.replicas.pop(table, None)

    def rename_table(self, table: str, new_name: str) -> None:
        if table in self.containers:
            self.containers[new_name] = self.containers.pop(table)
        if table in self.replicas:
            self.replicas[new_name] = self.replicas.pop(table)

    def live_row_count(self, table: str, snapshot_epoch: int) -> int:
        return sum(
            sum(1 for __ in container.live_rows(snapshot_epoch))
            for container in self.table_containers(table)
        )
