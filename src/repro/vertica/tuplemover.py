"""The Tuple Mover: mergeout and the Ancient History Mark.

Every committed transaction adds one ROS container per (table, node), so
a long run of small loads fragments storage into many tiny containers —
S2V at 128 partitions creates 128 of them.  Vertica's Tuple Mover
periodically *merges out* small containers into larger ones and purges
deleted rows, bounded by the **Ancient History Mark (AHM)**: the oldest
epoch any query may still ask for.  Containers newer than the AHM must
stay separate (a historical ``AT EPOCH`` query distinguishes them);
containers at or below it can be merged and their deleted rows dropped.

This module implements exactly that contract, and
``tests/test_vertica_tuplemover.py`` checks that mergeout never changes
the result of any query at any still-queryable epoch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.vertica.errors import TransactionError
from repro.vertica.storage import RosContainer


class TupleMover:
    """Mergeout/purge for one database."""

    def __init__(self, database: "VerticaDatabase"):  # noqa: F821
        self.db = database
        #: the Ancient History Mark: no query may read below this epoch
        self.ahm_epoch = 0
        #: statistics for observability/tests
        self.containers_merged = 0
        self.rows_purged = 0

    # -- AHM ------------------------------------------------------------------
    def advance_ahm(self, epoch: int = None) -> int:
        """Raise the AHM (defaults to the current committed epoch)."""
        target = self.db.epochs.current if epoch is None else epoch
        if target > self.db.epochs.current:
            raise TransactionError(
                f"AHM {target} cannot exceed the current epoch "
                f"{self.db.epochs.current}"
            )
        if target < self.ahm_epoch:
            raise TransactionError(
                f"AHM cannot move backwards ({self.ahm_epoch} -> {target})"
            )
        self.ahm_epoch = target
        return self.ahm_epoch

    # -- mergeout ----------------------------------------------------------------
    def mergeout(self, table: str = None) -> int:
        """Merge all eligible containers; returns how many were merged away.

        A container is eligible when its commit epoch is at or below the
        AHM.  Eligible containers of one (table, node) merge into a single
        container stamped with the *latest* of their commit epochs; rows
        whose deletion epoch is at or below the AHM are purged, while
        later deletions keep their delete-vector entries.
        """
        merged_away = 0
        tables = (
            [table.upper()] if table else list(self.db.catalog.tables.keys())
        )
        for table_name in tables:
            if self.db.locks.holder(table_name) is not None:
                # An active transaction may hold references into this
                # table's containers (staged deletes); skip until idle.
                continue
            for node_storage in self.db.storage.values():
                merged_away += self._mergeout_node(
                    node_storage.containers, table_name
                )
                merged_away += self._mergeout_node(
                    node_storage.replicas, table_name
                )
            self._refresh_statistics(table_name)
        self.containers_merged += merged_away
        return merged_away

    def _refresh_statistics(self, table_name: str) -> None:
        """Rebuild optimizer stats at moveout time (NDV/histograms go stale
        under incremental COPY updates; mergeout is the natural refresh)."""
        existing = self.db.catalog.statistics.get(table_name)
        if existing is None:
            return
        from repro.vertica.stats import collect_table_stats

        self.db.catalog.statistics[table_name] = collect_table_stats(
            self.db, table_name, existing.buckets
        )

    def _mergeout_node(
        self, container_map: Dict[str, List[RosContainer]], table_name: str
    ) -> int:
        containers = container_map.get(table_name)
        if not containers:
            return 0
        eligible = [c for c in containers if c.commit_epoch <= self.ahm_epoch]
        if len(eligible) < 2 and not any(
            self._purgeable_rows(c) for c in eligible
        ):
            return 0
        keep = [c for c in containers if c.commit_epoch > self.ahm_epoch]
        merged = self._merge(eligible)
        container_map[table_name] = ([merged] if merged else []) + keep
        return max(0, len(eligible) - (1 if merged else 0))

    def _purgeable_rows(self, container: RosContainer) -> int:
        return sum(
            1
            for delete_epoch in container.delete_epochs
            if 0 < delete_epoch <= self.ahm_epoch
        )

    def _merge(self, containers: List[RosContainer]) -> RosContainer:
        if not containers:
            return None
        column_names = containers[0].column_names
        columns: List[List] = [[] for __ in column_names]
        delete_epochs: List[int] = []
        row_hashes: List[int] = []
        purged = 0
        for container in containers:
            for index in range(container.nrows):
                delete_epoch = container.delete_epochs[index]
                if 0 < delete_epoch <= self.ahm_epoch:
                    purged += 1  # deleted before the AHM: purge for good
                    continue
                for column, source in zip(columns, container.columns):
                    column.append(source[index])
                delete_epochs.append(delete_epoch)
                row_hashes.append(container.row_hashes[index])
        self.rows_purged += purged
        if not delete_epochs and purged:
            # Everything was purged: no container needed at all.
            return None
        merged = RosContainer(
            column_names,
            columns,
            commit_epoch=max(c.commit_epoch for c in containers),
            row_hashes=row_hashes,
        )
        merged.delete_epochs = delete_epochs
        return merged


def storage_container_stats(
        database: "VerticaDatabase") -> List[Tuple[str, str, int, int]]:  # noqa: F821
    """(node, table, container count, live rows) per (node, table)."""
    out = []
    epoch = database.epochs.current
    for node_name, storage in database.storage.items():
        for table_name, containers in sorted(storage.containers.items()):
            live = sum(
                sum(1 for __ in c.live_rows(epoch)) for c in containers
            )
            out.append((node_name, table_name, len(containers), live))
    return out
