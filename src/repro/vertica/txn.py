"""Transactions, epochs and locking.

The substrate provides what the connector's correctness rests on:

- **Epochs** — a global counter advanced by every commit.  A query reads a
  *snapshot epoch*; rows are visible if committed at or before it and not
  deleted by it.  V2S pins all of its per-task queries to one epoch so
  independently scheduled (and re-scheduled) Spark tasks load one
  consistent view (§3.1.2).
- **Table-level exclusive locks** for writers, no-wait: within a single
  instant of simulated time there is no true concurrency, so a conflicting
  writer fails fast with :class:`LockContention` and retries.  S2V's
  "update-if-still-empty else abort" leader election runs on top of this.
- **Atomic commit** — all of a transaction's staged inserts become ROS
  containers stamped with one fresh epoch, and staged deletes become
  delete-vector entries at that same epoch, so other snapshots see either
  none or all of the transaction.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.vertica.errors import LockContention, TransactionError
from repro.vertica.storage import NodeStorage, RosContainer, WosBuffer

ACTIVE = "ACTIVE"
COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


class EpochManager:
    """The global epoch counter (last committed epoch)."""

    def __init__(self, initial: int = 1):
        self._current = initial

    @property
    def current(self) -> int:
        return self._current

    def advance(self) -> int:
        self._current += 1
        return self._current


class LockManager:
    """No-wait table locks with two modes.

    ``"I"`` (insert) locks are shared among inserters — parallel COPY/INSERT
    transactions append independent ROS containers and never conflict, which
    is what lets S2V's tasks load one staging table concurrently.  ``"X"``
    (exclusive) locks, taken by UPDATE/DELETE, conflict with everything.
    """

    def __init__(self) -> None:
        #: table -> {txn_id: mode}
        self._holders: Dict[str, Dict[int, str]] = {}

    def acquire(self, table: str, txn_id: int, mode: str = "X") -> None:
        if mode not in ("I", "X"):
            raise TransactionError(f"unknown lock mode {mode!r}")
        holders = self._holders.setdefault(table, {})
        current = holders.get(txn_id)
        if current == "X" or current == mode:
            return  # already hold an equal-or-stronger lock
        others = {t: m for t, m in holders.items() if t != txn_id}
        if mode == "X" and others:
            telemetry.counter("vertica.lock.contention").inc()
            raise LockContention(table, next(iter(others)), txn_id)
        if mode == "I" and any(m == "X" for m in others.values()):
            blocker = next(t for t, m in others.items() if m == "X")
            telemetry.counter("vertica.lock.contention").inc()
            raise LockContention(table, blocker, txn_id)
        holders[txn_id] = mode
        telemetry.counter("vertica.lock.acquired").inc()

    def release_all(self, txn_id: int) -> None:
        for table in list(self._holders):
            self._holders[table].pop(txn_id, None)
            if not self._holders[table]:
                del self._holders[table]

    def holder(self, table: str) -> Optional[int]:
        holders = self._holders.get(table)
        if not holders:
            return None
        return next(iter(holders))

    def held_tables(self) -> Dict[str, Dict[int, str]]:
        """Snapshot of every held lock: table -> {txn_id: mode}.

        Empty once all transactions have committed or aborted — the
        invariant the chaos checker audits after every faulted run.
        """
        return {table: dict(holders) for table, holders in self._holders.items()}


class Transaction:
    """One transaction's staged state."""

    _ids = itertools.count(1)

    def __init__(self, epoch_manager: EpochManager, lock_manager: LockManager):
        self.txn_id = next(self._ids)
        self.status = ACTIVE
        self._epochs = epoch_manager
        self._locks = lock_manager
        #: snapshot the transaction reads at (fixed at first read)
        self._snapshot: Optional[int] = None
        #: staged inserts: (table, node) -> WosBuffer
        self.wos: Dict[Tuple[str, str], WosBuffer] = {}
        #: staged replica inserts for k-safety: (table, buddy_node) -> WosBuffer
        self.replica_wos: Dict[Tuple[str, str], WosBuffer] = {}
        #: staged deletes: (container, row_index)
        self.deletes: List[Tuple[RosContainer, int]] = []
        self._deleted_keys: set = set()
        #: actions to run after a successful commit (e.g. TRUNCATE finalise)
        self.post_commit: List[Callable[[int], None]] = []

    # -- snapshot ------------------------------------------------------------
    def snapshot_epoch(self, requested: Optional[int] = None) -> int:
        """The epoch this transaction's reads see.

        ``requested`` pins an explicit ``AT EPOCH n``; otherwise the first
        read fixes the snapshot at the current committed epoch (repeatable
        reads within one transaction).
        """
        if requested is not None:
            if requested > self._epochs.current:
                raise TransactionError(
                    f"epoch {requested} is in the future "
                    f"(current {self._epochs.current})"
                )
            return requested
        if self._snapshot is None:
            self._snapshot = self._epochs.current
        return self._snapshot

    # -- write staging ---------------------------------------------------------
    def require_active(self) -> None:
        if self.status != ACTIVE:
            raise TransactionError(f"transaction {self.txn_id} is {self.status}")

    def lock(self, table: str, mode: str = "X") -> None:
        self.require_active()
        self._locks.acquire(table, self.txn_id, mode)

    def wos_for(self, table: str, node: str, column_names) -> WosBuffer:
        key = (table, node)
        if key not in self.wos:
            self.wos[key] = WosBuffer(column_names)
        return self.wos[key]

    def replica_wos_for(self, table: str, node: str, column_names) -> WosBuffer:
        key = (table, node)
        if key not in self.replica_wos:
            self.replica_wos[key] = WosBuffer(column_names)
        return self.replica_wos[key]

    def stage_delete(self, container: RosContainer, row_index: int) -> None:
        self.require_active()
        self.deletes.append((container, row_index))
        self._deleted_keys.add((id(container), row_index))

    def pending_rows(self, table: str) -> List[Dict[str, Any]]:
        """Read-your-writes: rows this transaction has staged for ``table``."""
        out: List[Dict[str, Any]] = []
        for (wos_table, __), buffer in self.wos.items():
            if wos_table != table:
                continue
            for row in buffer.rows:
                out.append(dict(zip(buffer.column_names, row)))
        return out

    def is_deleted_by_self(self, container: RosContainer, row_index: int) -> bool:
        return (id(container), row_index) in self._deleted_keys

    # -- outcome -------------------------------------------------------------------
    def commit(self, storage: Dict[str, NodeStorage]) -> int:
        """Apply staged writes atomically; returns the new commit epoch.

        ``release_all`` runs in a ``finally``: a fault injected mid-commit
        (e.g. a crash between the WOS flush and the epoch advance) must not
        leave this transaction's table locks behind, or every later job on
        the same table deadlocks against a ghost holder.  A transaction
        whose commit raised is marked ABORTED — its outcome is undefined
        and it must not be retried as if still active.
        """
        self.require_active()
        try:
            has_writes = bool(
                self.wos or self.replica_wos or self.deletes or self.post_commit
            )
            if not has_writes:
                self.status = COMMITTED
                return self._epochs.current
            epoch = self._epochs.advance()
            for (table, node), buffer in self.wos.items():
                if buffer.nrows:
                    storage[node].add_container(table, buffer.to_container(epoch))
            for (table, node), buffer in self.replica_wos.items():
                if buffer.nrows:
                    storage[node].add_replica(table, buffer.to_container(epoch))
            for container, row_index in self.deletes:
                if container.delete_epochs[row_index] == 0:
                    container.delete_epochs[row_index] = epoch
            for action in self.post_commit:
                action(epoch)
            self.status = COMMITTED
            telemetry.counter("vertica.txn.commits").inc()
            return epoch
        finally:
            if self.status != COMMITTED:
                self.status = ABORTED
                telemetry.counter("vertica.txn.commit_failures").inc()
            self._locks.release_all(self.txn_id)

    def abort(self) -> None:
        self.require_active()
        try:
            self.wos.clear()
            self.replica_wos.clear()
            self.deletes.clear()
            self._deleted_keys.clear()
            self.post_commit.clear()
        finally:
            self.status = ABORTED
            self._locks.release_all(self.txn_id)
            telemetry.counter("vertica.txn.aborts").inc()
