"""SQL column types.

Vertica's type zoo is collapsed to the four types the paper's datasets and
protocol tables use: ``INTEGER`` (64-bit), ``FLOAT`` (double precision),
``VARCHAR(n)`` and ``BOOLEAN``.  Each type knows how to validate/coerce a
Python value, how wide it is on the wire (driving network cost accounting)
and how to parse from / format to CSV for the COPY path.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.vertica.errors import SqlError, TypeMismatchError

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class SqlType:
    """Base class; concrete types are singletons or parameterised instances."""

    name = "SQLTYPE"
    #: bytes of storage one value of this type occupies (estimate)
    width = 8
    #: the Avro primitive this type maps to
    avro_kind = "string"

    def coerce(self, value: Any) -> Any:
        """Validate/convert ``value`` (None always passes, meaning SQL NULL)."""
        raise NotImplementedError

    def from_csv(self, token: str) -> Any:
        """Parse a CSV token; empty string means NULL."""
        if token == "":
            return None
        return self.coerce(self._parse(token))

    def _parse(self, token: str) -> Any:
        raise NotImplementedError

    def to_csv(self, value: Any) -> str:
        return "" if value is None else str(value)

    def value_width(self, value: Any) -> int:
        return self.width

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SqlType) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))


class IntegerType(SqlType):
    name = "INTEGER"
    width = 8
    avro_kind = "long"

    def coerce(self, value: Any) -> Optional[int]:
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not an INTEGER")
        if isinstance(value, int):
            out = value
        elif isinstance(value, float) and value.is_integer():
            out = int(value)
        else:
            raise TypeMismatchError(f"{value!r} is not an INTEGER")
        if not _INT64_MIN <= out <= _INT64_MAX:
            raise TypeMismatchError(f"{out} out of INTEGER range")
        return out

    def _parse(self, token: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise TypeMismatchError(f"{token!r} is not an INTEGER") from None


class FloatType(SqlType):
    name = "FLOAT"
    width = 8
    avro_kind = "double"

    def coerce(self, value: Any) -> Optional[float]:
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeMismatchError(f"{value!r} is not a FLOAT")

    def _parse(self, token: str) -> float:
        try:
            return float(token)
        except ValueError:
            raise TypeMismatchError(f"{token!r} is not a FLOAT") from None

    def to_csv(self, value: Any) -> str:
        return "" if value is None else repr(float(value))


class BooleanType(SqlType):
    name = "BOOLEAN"
    width = 1
    avro_kind = "boolean"

    _TRUE = {"true", "t", "1", "yes"}
    _FALSE = {"false", "f", "0", "no"}

    def coerce(self, value: Any) -> Optional[bool]:
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        raise TypeMismatchError(f"{value!r} is not a BOOLEAN")

    def _parse(self, token: str) -> bool:
        lowered = token.strip().lower()
        if lowered in self._TRUE:
            return True
        if lowered in self._FALSE:
            return False
        raise TypeMismatchError(f"{token!r} is not a BOOLEAN")

    def to_csv(self, value: Any) -> str:
        if value is None:
            return ""
        return "true" if value else "false"


class VarcharType(SqlType):
    avro_kind = "string"

    def __init__(self, length: int = 80):
        if length <= 0:
            raise SqlError(f"VARCHAR length must be positive: {length}")
        self.length = length

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"VARCHAR({self.length})"

    def coerce(self, value: Any) -> Optional[str]:
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeMismatchError(f"{value!r} is not a VARCHAR")
        if len(value.encode("utf-8")) > self.length:
            raise TypeMismatchError(
                f"string of {len(value)} chars exceeds {self.name}"
            )
        return value

    def _parse(self, token: str) -> str:
        return token

    def value_width(self, value: Any) -> int:
        # VARCHARs are stored/shipped at their actual length.
        return len(value.encode("utf-8")) if isinstance(value, str) else 1


INTEGER = IntegerType()
FLOAT = FloatType()
BOOLEAN = BooleanType()


def VARCHAR(length: int = 80) -> VarcharType:
    """Construct a VARCHAR type of the given maximum byte length."""
    return VarcharType(length)


_ALIASES = {
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "BIGINT": INTEGER,
    "LONG": INTEGER,
    "FLOAT": FLOAT,
    "DOUBLE": FLOAT,
    "DOUBLE PRECISION": FLOAT,
    "REAL": FLOAT,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
}


def parse_type(text: str) -> SqlType:
    """Parse a SQL type name, e.g. ``FLOAT`` or ``VARCHAR(200)``."""
    token = text.strip().upper()
    if token in _ALIASES:
        return _ALIASES[token]
    if token.startswith("VARCHAR"):
        rest = token[len("VARCHAR"):].strip()
        if not rest:
            return VarcharType()
        if rest.startswith("(") and rest.endswith(")"):
            try:
                return VarcharType(int(rest[1:-1]))
            except ValueError:
                raise SqlError(f"bad VARCHAR length in {text!r}") from None
    raise SqlError(f"unknown SQL type {text!r}")
