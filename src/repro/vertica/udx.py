"""User-Defined Extensions (UDx).

Vertica lets users extend SQL with custom functions (§2.1.1).  The
connector's MD component registers ``PMMLPredict`` here so models trained
in Spark can score rows inside the database via plain SQL::

    SELECT PMMLPredict(sepal_length, ..., USING PARAMETERS
                       model_name='regression') FROM IrisTable

A scalar UDx is a Python callable ``(args: list, parameters: dict) ->
value`` invoked once per row.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.vertica.errors import SqlError

UdxCallable = Callable[[List[Any], Dict[str, Any]], Any]


class UdxRegistry:
    """Named scalar functions available to the query engine."""

    def __init__(self) -> None:
        self._functions: Dict[str, UdxCallable] = {}

    def register(self, name: str, function: UdxCallable, replace: bool = False) -> None:
        key = name.upper()
        if key in self._functions and not replace:
            raise SqlError(f"UDx {name!r} is already registered")
        self._functions[key] = function

    def unregister(self, name: str) -> None:
        self._functions.pop(name.upper(), None)

    def lookup(self, name: str) -> UdxCallable:
        try:
            return self._functions[name.upper()]
        except KeyError:
            raise SqlError(f"unknown function or UDx {name!r}") from None

    def is_registered(self, name: str) -> bool:
        return name.upper() in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)
