"""Workload management: resource pools, admission control, session pooling.

The paper's connector assumes it owns the Vertica cluster; the fabric's
north star — serving many concurrent V2S/S2V/MD jobs from shared nodes —
needs the mediation layer real Vertica provides through resource pools.
This package supplies the simulated equivalent:

- :mod:`repro.wlm.pools` — catalog-persisted :class:`ResourcePool`
  definitions (memory budget, PLANNED/MAXCONCURRENCY, priority,
  QUEUETIMEOUT, CASCADE TO) with the built-in ``GENERAL`` default;
- :mod:`repro.wlm.admission` — the :class:`AdmissionController` that
  gates statements through slot + memory grants on the sim clock,
  queueing FIFO-within-priority and raising
  :class:`~repro.vertica.errors.AdmissionTimeout` past QUEUETIMEOUT;
- :mod:`repro.wlm.sessionpool` — the connector-side :class:`SessionPool`
  of reusable node-bound sessions with health-checked checkout/checkin.

Admission is opt-in per cluster (``SimVerticaCluster(wlm=True)``); the
multi-tenant serving driver lives in :mod:`repro.bench.concurrent_serve`
and ``docs/WLM.md`` describes the knobs and telemetry.
"""

from __future__ import annotations

from repro.wlm.admission import AdmissionController, AdmissionTicket
from repro.wlm.pools import GENERAL, ResourcePool, general_pool
from repro.wlm.sessionpool import SessionPool

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "GENERAL",
    "ResourcePool",
    "SessionPool",
    "general_pool",
]
