"""Admission control: the runtime side of resource pools.

The :class:`AdmissionController` turns catalog
:class:`~repro.wlm.pools.ResourcePool` definitions into live
:class:`~repro.sim.resources.PriorityResource` pairs — one counting
execution slots (MAXCONCURRENCY), one counting memory (the pool budget in
MB) — and gates statements through them on the simulation clock.

A statement admits by claiming one slot plus its pool's per-query memory
grant; both claims queue FIFO-within-priority.  If the pool's
QUEUETIMEOUT elapses first, the queued claims are cancelled and the
statement either cascades into the pool's secondary pool (CASCADE TO) or
fails with :class:`~repro.vertica.errors.AdmissionTimeout`.  The caller
holds an :class:`AdmissionTicket` for the statement's lifetime and
releases it when execution finishes — leaked tickets are exactly what the
chaos ``InvariantChecker`` audits for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.cache.result import MemoryAccount
from repro.sim.kernel import Environment
from repro.sim.resources import PriorityResource
from repro.vertica.errors import AdmissionTimeout
from repro.wlm.pools import ResourcePool


class AdmissionTicket:
    """Proof of admission: the slot + memory grants one statement holds."""

    def __init__(
        self,
        state: "_PoolState",
        slot_req,
        mem_req,
        queue_wait: float,
        tried: Tuple[str, ...],
    ):
        self._state = state
        self._slot_req = slot_req
        self._mem_req = mem_req
        self.queue_wait = queue_wait
        #: pools the statement queued in, admission pool last
        self.tried = tried
        self._released = False

    @property
    def pool_name(self) -> str:
        """The pool that actually admitted the statement."""
        return self._state.pool.name

    def release(self) -> None:
        """Return the slot and memory grants; idempotent."""
        if self._released:
            return
        self._released = True
        self._state.slots.release(self._slot_req)
        self._state.memory.release(self._mem_req)
        self._state.observe()


class _PoolState:
    """One pool's live resources plus its telemetry instruments."""

    def __init__(self, env: Environment, pool: ResourcePool):
        self.pool = pool
        self.slots = PriorityResource(
            env, pool.max_concurrency, name=f"wlm.{pool.name}.slots"
        )
        self.memory = PriorityResource(
            env, pool.memory_mb, name=f"wlm.{pool.name}.memory_mb"
        )
        #: MB of the memory ledger held by result-cache residency rather
        #: than by an in-flight statement (see :meth:`AdmissionController.
        #: cache_account`) — excluded from leak detection because cached
        #: bytes legitimately outlive every ticket.
        self.cache_mb = 0

    def observe(self) -> None:
        base = f"wlm.pool.{self.pool.name}"
        telemetry.gauge(f"{base}.occupancy").set(self.slots.in_use)
        telemetry.gauge(f"{base}.memory_mb").set(self.memory.in_use)
        telemetry.gauge(f"{base}.cache_mb").set(self.cache_mb)
        telemetry.gauge(f"{base}.queue_depth").set(self.queue_depth)

    @property
    def queue_depth(self) -> int:
        return max(self.slots.queue_length, self.memory.queue_length)

    @property
    def busy(self) -> bool:
        return (
            self.slots.in_use > 0
            or self.memory.in_use - self.cache_mb > 0
            or self.queue_depth > 0
        )


class AdmissionController:
    """Gates statements through named resource pools on the sim clock.

    Pool *definitions* live in the catalog; this controller lazily
    materialises live state per pool on first admission, so pools created
    mid-run (``create_resource_pool``) work without re-wiring.
    """

    def __init__(self, env: Environment, catalog) -> None:
        self.env = env
        self.catalog = catalog
        self._states: Dict[str, _PoolState] = {}

    def state(self, pool_name: str) -> _PoolState:
        """The live state for ``pool_name`` (CatalogError if unknown)."""
        name = pool_name.upper()
        state = self._states.get(name)
        pool = self.catalog.resource_pool(name)
        if state is None or state.pool is not pool:
            # first admission, or the pool was redefined (CREATE OR REPLACE)
            if state is not None and state.busy:
                # keep serving in-flight grants from the old definition
                return state
            state = _PoolState(self.env, pool)
            self._states[name] = state
        return state

    def admit(self, pool_name: str, priority_boost: int = 0):
        """Generator: block until admitted; returns an :class:`AdmissionTicket`.

        Walks the cascade chain: queue in ``pool_name`` until granted or
        its queue timeout fires, then retry in its CASCADE TO pool, and so
        on.  A cycle or chain end without admission raises
        :class:`AdmissionTimeout` with every queued claim returned.
        """
        started = self.env.now
        tried = []
        name = pool_name.upper()
        while True:
            state = self.state(name)
            tried.append(state.pool.name)
            ticket = yield from self._try_pool(state, started, tuple(tried),
                                               priority_boost)
            if ticket is not None:
                return ticket
            cascade = state.pool.cascade
            if cascade is None or cascade in tried:
                waited = self.env.now - started
                telemetry.counter("wlm.rejections").inc()
                telemetry.counter(f"wlm.pool.{state.pool.name}.rejections").inc()
                raise AdmissionTimeout(pool_name, waited, tuple(tried))
            telemetry.counter("wlm.cascades").inc()
            name = cascade

    def _try_pool(self, state: _PoolState, started: float,
                  tried: Tuple[str, ...], priority_boost: int):
        """Queue in one pool; returns a ticket or None on queue timeout."""
        pool = state.pool
        priority = pool.priority + priority_boost
        slot_req = state.slots.request(1, priority=priority)
        mem_req = state.memory.request(
            min(pool.memory_per_query_mb, pool.memory_mb), priority=priority
        )
        state.observe()
        telemetry.gauge("wlm.queue_depth").set(self._total_queue_depth())
        both = self.env.all_of([slot_req, mem_req])
        try:
            if pool.queue_timeout is None:
                yield both
            else:
                yield self.env.any_of([both, self.env.timeout(pool.queue_timeout)])
        except BaseException:
            # interrupted (chaos kill, process teardown) while queued or
            # just granted — give everything back before unwinding
            state.slots.release(slot_req)
            state.memory.release(mem_req)
            state.observe()
            raise
        if not both.triggered:
            state.slots.release(slot_req)
            state.memory.release(mem_req)
            state.observe()
            telemetry.counter(f"wlm.pool.{pool.name}.queue_timeouts").inc()
            return None
        wait = self.env.now - started
        telemetry.counter("wlm.admissions").inc()
        telemetry.histogram("wlm.queue_wait_seconds").observe(wait)
        telemetry.histogram(f"wlm.pool.{pool.name}.queue_wait_seconds").observe(wait)
        state.observe()
        telemetry.gauge("wlm.queue_depth").set(self._total_queue_depth())
        return AdmissionTicket(state, slot_req, mem_req, wait, tried)

    def _total_queue_depth(self) -> int:
        return sum(s.queue_depth for s in self._states.values())

    def cache_account(self, pool_name: str) -> "PoolCacheAccount":
        """A :class:`~repro.cache.result.MemoryAccount` charging a pool.

        Attach it to a :class:`~repro.cache.result.ResultCache` and the
        cache's resident bytes hold real memory grants in ``pool_name``'s
        ledger — cached results genuinely compete with query admission.
        Reservations never *queue*: if the pool cannot grant the MB right
        now, ``grow`` fails and the cache evicts or refuses the store.
        """
        return PoolCacheAccount(self, pool_name)

    def leaked(self) -> Dict[str, Tuple[int, int, int]]:
        """Pools still holding grants: name -> (slots, memory_mb, queued).

        Empty when every ticket was released — the invariant the chaos
        checker asserts after each trial.  Result-cache residency
        (``cache_mb``) is deliberately excluded: cached bytes outlive
        tickets by design.
        """
        return {
            name: (s.slots.in_use, s.memory.in_use - s.cache_mb, s.queue_depth)
            for name, s in sorted(self._states.items())
            if s.busy
        }


class PoolCacheAccount(MemoryAccount):
    """Charges result-cache bytes into one pool's memory ledger.

    Grants are held as 1 MB grants so grow/shrink always align exactly
    with the pool's :class:`~repro.sim.resources.PriorityResource`
    accounting; a grant that cannot be satisfied *immediately* is
    cancelled rather than queued (the cache must never block a query).
    """

    def __init__(self, controller: AdmissionController, pool_name: str):
        self._controller = controller
        self.pool_name = pool_name.upper()
        #: (pool state, granted request) per resident MB, LIFO
        self._grants: List[Tuple[_PoolState, object]] = []

    @property
    def reserved_mb(self) -> int:
        return len(self._grants)

    def grow(self, mb: int) -> bool:
        state = self._controller.state(self.pool_name)
        taken = []
        for __ in range(mb):
            request = state.memory.request(1, priority=state.pool.priority)
            if not request.triggered:
                # No headroom: cancel the queued claim and roll back.
                state.memory.release(request)
                for held in taken:
                    state.memory.release(held)
                state.observe()
                telemetry.counter(
                    f"wlm.pool.{state.pool.name}.cache_grow_denied"
                ).inc()
                return False
            taken.append(request)
        state.cache_mb += mb
        self._grants.extend((state, request) for request in taken)
        state.observe()
        return True

    def shrink(self, mb: int) -> None:
        for __ in range(min(mb, len(self._grants))):
            state, request = self._grants.pop()
            state.memory.release(request)
            state.cache_mb -= 1
            state.observe()
