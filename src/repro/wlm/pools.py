"""Named resource pools: the catalog-level workload-management model.

A :class:`ResourcePool` mirrors the knobs real Vertica exposes per pool
(§ the product's CREATE RESOURCE POOL):

- ``memory_mb`` — the pool's memory budget; each admitted statement is
  granted ``memory_mb // planned_concurrency`` MB, so running more than
  PLANNEDCONCURRENCY statements queues on memory even when slots remain;
- ``max_concurrency`` — a hard cap on concurrently executing statements;
- ``priority`` — admission order across pools contending for the same
  runtime resources (cascades): higher admits first, FIFO within equal
  priority;
- ``queue_timeout`` — how long a statement may wait for admission before
  cascading (if ``cascade`` names a secondary pool) or failing with
  :class:`~repro.vertica.errors.AdmissionTimeout`;
- ``cascade`` — the secondary pool an overflowing statement retries in,
  modelling CASCADE TO.

Pool definitions are pure data, persisted in the
:class:`~repro.vertica.catalog.Catalog` (and visible through the
``V_CATALOG.RESOURCE_POOLS`` system table); the runtime counterpart that
actually holds slots and memory on the simulation clock is
:class:`repro.wlm.admission.AdmissionController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vertica.errors import CatalogError

#: every database is born with this pool; statements run in it by default
GENERAL = "GENERAL"


@dataclass(frozen=True)
class ResourcePool:
    """One named pool's admission knobs (pure data, catalog-persisted)."""

    name: str
    memory_mb: int = 8192
    planned_concurrency: int = 32
    max_concurrency: int = 64
    priority: int = 0
    queue_timeout: Optional[float] = 300.0  # None waits forever
    cascade: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CatalogError("a resource pool requires a name")
        object.__setattr__(self, "name", self.name.upper())
        if self.cascade is not None:
            object.__setattr__(self, "cascade", self.cascade.upper())
        if self.memory_mb <= 0:
            raise CatalogError(
                f"pool {self.name!r}: memory_mb must be positive: {self.memory_mb}"
            )
        if self.planned_concurrency <= 0 or self.max_concurrency <= 0:
            raise CatalogError(
                f"pool {self.name!r}: planned/max concurrency must be positive"
            )
        if self.max_concurrency < self.planned_concurrency:
            raise CatalogError(
                f"pool {self.name!r}: max_concurrency "
                f"{self.max_concurrency} < planned_concurrency "
                f"{self.planned_concurrency}"
            )
        if self.queue_timeout is not None and self.queue_timeout < 0:
            raise CatalogError(
                f"pool {self.name!r}: queue_timeout must be >= 0 or None"
            )
        if self.cascade == self.name:
            raise CatalogError(f"pool {self.name!r} cannot cascade to itself")

    @property
    def memory_per_query_mb(self) -> int:
        """The memory grant one admitted statement claims."""
        return max(1, self.memory_mb // self.planned_concurrency)


def general_pool() -> ResourcePool:
    """The built-in default pool every database starts with."""
    return ResourcePool(GENERAL)
