"""Client-side session pooling for the connector's JDBC bridge.

Each V2S scan task and S2V write task historically opened a fresh
:class:`~repro.vertica.session.Session` per connection and paid the
connect handshake every time.  Under a multi-tenant serving workload
that both wastes latency and churns ``max_client_sessions`` slots.  The
:class:`SessionPool` keeps a bounded per-node free list of idle
sessions: checkout prefers a healthy idle session on the requested node
(skipping the handshake), falls back to opening a new one (with node
failover), and checkin returns the session reset for the next tenant.

Health checks happen at the pool boundary: idle sessions bound to a node
that has gone DOWN are closed and evicted rather than handed out, and a
session checked in while its node is DOWN is discarded instead of
cached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.vertica.errors import ConnectionLimitError, VerticaError
from repro.vertica.session import Session


class SessionPool:
    """A bounded, node-aware free list of idle Vertica sessions."""

    def __init__(
        self,
        db: "repro.vertica.database.VerticaDatabase",  # noqa: F821
        max_idle_per_node: int = 8,
        failover: bool = True,
    ):
        self.db = db
        self.max_idle_per_node = max_idle_per_node
        self.failover = failover
        self._idle: Dict[str, List[Session]] = {}

    # -- checkout ---------------------------------------------------------------
    def checkout(
        self, node: Optional[str] = None, resource_pool: Optional[str] = None
    ) -> Tuple[Session, bool]:
        """Acquire a session for ``node``; returns ``(session, reused)``.

        ``reused=True`` means the session came off the free list, so the
        caller may skip its connect-handshake latency.  When the target
        node cannot take a new connection and has no idle sessions, the
        checkout fails over to any node with an idle session before
        giving up.
        """
        target = node or self.db.node_names[0]
        session = self._reuse(target)
        reused = session is not None
        if session is None:
            try:
                session = self.db.connect(target, failover=self.failover)
                telemetry.counter("wlm.sessions.opened").inc()
            except ConnectionLimitError:
                session = self._reuse_any()
                if session is None:
                    raise
                reused = True
                telemetry.counter("wlm.sessions.failover_checkouts").inc()
        if resource_pool is not None:
            session.set_resource_pool(resource_pool)
        return session, reused

    def _reuse(self, node: str) -> Optional[Session]:
        """Pop a healthy idle session bound to ``node``, if any."""
        if self.db.node_states.get(node) != "UP":
            self._evict_node(node)
            return None
        idle = self._idle.get(node)
        while idle:
            session = idle.pop()
            if session._closed:
                continue
            telemetry.counter("wlm.sessions.reused").inc()
            return session
        return None

    def _reuse_any(self) -> Optional[Session]:
        """Pop a healthy idle session from any node (failover checkout)."""
        for node in sorted(self._idle):
            session = self._reuse(node)
            if session is not None:
                return session
        return None

    # -- checkin ----------------------------------------------------------------
    def checkin(self, session: Session) -> None:
        """Return a session to the pool (or close it if unpoolable)."""
        if session._closed:
            return
        idle = self._idle.setdefault(session.node, [])
        if (
            self.db.node_states.get(session.node) != "UP"
            or len(idle) >= self.max_idle_per_node
        ):
            session.close()
            telemetry.counter("wlm.sessions.evicted").inc()
            return
        try:
            session.reset()
        except VerticaError:
            session.close()
            telemetry.counter("wlm.sessions.evicted").inc()
            return
        idle.append(session)

    # -- maintenance -------------------------------------------------------------
    def _evict_node(self, node: str) -> None:
        for session in self._idle.pop(node, []):
            if not session._closed:
                session.close()
                telemetry.counter("wlm.sessions.evicted").inc()

    def idle_count(self, node: Optional[str] = None) -> int:
        if node is not None:
            return len(self._idle.get(node, []))
        return sum(len(sessions) for sessions in self._idle.values())

    def close_all(self) -> None:
        """Drain the free list, closing every idle session."""
        for node in list(self._idle):
            for session in self._idle.pop(node):
                if not session._closed:
                    session.close()
