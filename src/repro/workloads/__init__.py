"""Dataset generators for the paper's experiments (§4.1)."""

from repro.workloads.datasets import (
    Dataset,
    load_direct,
    make_d1,
    make_d1_reshaped,
    make_d1_with_int_column,
    make_d2,
)

__all__ = [
    "Dataset",
    "load_direct",
    "make_d1",
    "make_d1_reshaped",
    "make_d1_with_int_column",
    "make_d2",
]
