"""The paper's two datasets, at laptop scale with virtual volume.

- **D1**: 100 columns of float64 drawn uniformly from [0, 1); 100 million
  rows; 140 GB as CSV.
- **D2**: Twitter-like data — a ``tweet_id`` (long) and ``tweet_text``
  (string); 1.46 billion rows; also 140 GB as CSV.

A :class:`Dataset` carries a small set of *real* rows (deterministic,
seeded) plus the paper's *virtual* row count; ``scale`` is the ratio.
Protocols move the real rows; the simulation charges real bytes × scale,
so a 2,000-row laptop dataset exercises the exact code path the paper ran
over 140 GB while the simulated clock sees 140 GB.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.spark.row import StructField, StructType

D1_VIRTUAL_ROWS = 100_000_000
D2_VIRTUAL_ROWS = 1_460_000_000

_WORDS = (
    "data spark vertica fast load query cluster node epoch hash copy "
    "stream table row column analytics model train predict fabric big "
    "enterprise pipeline connector shuffle network segment commit"
).split()


class Dataset:
    """Real rows standing in for a virtual row count."""

    def __init__(
        self,
        name: str,
        schema: StructType,
        rows: List[Tuple],
        virtual_rows: int,
        segmentation: Sequence[str] = (),
    ):
        if not rows:
            raise ValueError("a dataset requires at least one real row")
        if virtual_rows < len(rows):
            raise ValueError("virtual_rows must be >= the real row count")
        self.name = name
        self.schema = schema
        self.rows = rows
        self.virtual_rows = virtual_rows
        self.segmentation = list(segmentation) or [schema.fields[0].name]

    @property
    def real_rows(self) -> int:
        return len(self.rows)

    @property
    def scale(self) -> float:
        return self.virtual_rows / len(self.rows)

    def with_virtual_rows(self, virtual_rows: int) -> "Dataset":
        """The same real rows standing for a different virtual volume."""
        return Dataset(
            self.name, self.schema, self.rows, virtual_rows, self.segmentation
        )

    def create_table_sql(self, table: str, varchar_length: int = 300) -> str:
        return self.schema.create_table_sql(
            table, segmented_by=self.segmentation, varchar_length=varchar_length
        )

    def csv_text(self) -> str:
        """The real rows as CSV (for COPY-based loads)."""
        lines = []
        for row in self.rows:
            fields = []
            for value in row:
                if value is None:
                    fields.append("")
                elif isinstance(value, float):
                    # ~12 significant digits: the paper's D1 is 1400 CSV
                    # bytes per 100-column row (14 bytes per value)
                    fields.append(f"{value:.10g}")
                else:
                    fields.append(str(value))
            lines.append(",".join(fields))
        return "\n".join(lines) + "\n"

    def csv_bytes_per_row(self) -> float:
        text = self.csv_text()
        return len(text.encode("utf-8")) / len(self.rows)

    def virtual_csv_bytes(self) -> float:
        return self.csv_bytes_per_row() * self.virtual_rows


def make_d1(
    real_rows: int = 2000,
    virtual_rows: int = D1_VIRTUAL_ROWS,
    num_cols: int = 100,
    seed: int = 11,
) -> Dataset:
    """Dataset D1: ``num_cols`` float64 columns uniform in [0, 1)."""
    rng = np.random.RandomState(seed)
    matrix = rng.random_sample((real_rows, num_cols))
    rows = [tuple(float(v) for v in matrix[i]) for i in range(real_rows)]
    schema = StructType(
        [StructField(f"c{i:03d}", "double") for i in range(num_cols)]
    )
    return Dataset("D1", schema, rows, virtual_rows, segmentation=["c000"])


def make_d1_reshaped(
    real_rows: int = 2000,
    virtual_rows: int = 10_000_000_000,
    seed: int = 11,
) -> Dataset:
    """D1 reshaped to 1 column × 10,000M rows (same cell count, §4.5)."""
    data = make_d1(real_rows=real_rows, num_cols=1, seed=seed)
    return Dataset("D1x1col", data.schema, data.rows, virtual_rows, ["c000"])


def make_d1_with_int_column(
    real_rows: int = 2000,
    virtual_rows: int = D1_VIRTUAL_ROWS,
    num_cols: int = 100,
    seed: int = 11,
) -> Dataset:
    """D1 plus a uniform integer column in [0, 100) (§4.7.1).

    The JDBC Default Source can only parallelise over an integer column
    with known min/max, and the paper's 5% selectivity predicate selects
    on this column.
    """
    base = make_d1(real_rows, virtual_rows, num_cols, seed)
    rng = np.random.RandomState(seed + 1)
    keys = rng.randint(0, 100, size=real_rows)
    rows = [(int(keys[i]),) + row for i, row in enumerate(base.rows)]
    schema = StructType(
        [StructField("ikey", "long")] + list(base.schema.fields)
    )
    return Dataset("D1+int", schema, rows, virtual_rows, segmentation=["ikey"])


def make_d2(
    real_rows: int = 4000,
    virtual_rows: int = D2_VIRTUAL_ROWS,
    seed: int = 23,
) -> Dataset:
    """Dataset D2: (tweet_id, tweet_text) rows, ~96 CSV bytes per row."""
    rng = np.random.RandomState(seed)
    rows: List[Tuple] = []
    for i in range(real_rows):
        tweet_id = int(rng.randint(1, 2**62))
        length = 0
        words = []
        target = 70 + int(rng.randint(0, 20))
        while length < target:
            word = _WORDS[rng.randint(0, len(_WORDS))]
            # sprinkle in unique tokens so the text is only mildly
            # compressible, like real tweets
            if rng.random_sample() < 0.3:
                word = f"{word}{rng.randint(0, 10**6)}"
            words.append(word)
            length += len(word) + 1
        rows.append((tweet_id, " ".join(words)[:target]))
    schema = StructType(
        [StructField("tweet_id", "long"), StructField("tweet_text", "string")]
    )
    return Dataset("D2", schema, rows, virtual_rows, segmentation=["tweet_id"])


def load_direct(cluster, dataset: Dataset, table: str,
                varchar_length: int = 300) -> None:
    """Populate a Vertica table with a dataset's real rows, bypassing the
    simulated network (experiment setup, not part of any measurement)."""
    db = cluster.db if hasattr(cluster, "db") else cluster
    session = db.connect()
    try:
        session.execute(dataset.create_table_sql(table, varchar_length))
        txn = db.begin()
        names = [f.name.upper() for f in dataset.schema.fields]
        rows = [dict(zip(names, row)) for row in dataset.rows]
        db.engine.insert_rows(table.upper(), rows, txn)
        txn.commit(db.storage)
    finally:
        session.close()
