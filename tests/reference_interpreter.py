"""A frozen copy of the pre-plan-pipeline SELECT interpreter.

This is the row-at-a-time interpreter that ``Engine.select`` used before
the ``repro.vertica.plan`` pipeline replaced it — ported verbatim (minus
telemetry and the AHM check, which are entry-point concerns) and kept
here as the **differential oracle**: ``tests/test_plan_differential.py``
asserts the pipeline produces byte-identical results (rows, columns, and
every CostReport field) for randomly generated queries.

Do not "fix" behaviour here; its quirks are the specification.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.vertica.engine import CostReport, ResultSet, extract_hash_range
from repro.vertica.errors import SqlError
from repro.vertica.expr import ColumnRef, Expression, predicate_holds
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.txn import Transaction


def _value_bytes(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    return 8


class LegacyInterpreter:
    """The pre-pipeline per-row-dict SELECT evaluator."""

    def __init__(self, database) -> None:
        self.database = database

    def select(
        self,
        statement: ast.Select,
        txn: Transaction,
        initiator: str,
        cost: Optional[CostReport] = None,
    ) -> ResultSet:
        cost = cost if cost is not None else CostReport()
        snapshot = txn.snapshot_epoch(statement.at_epoch)
        rows, source_columns = self._source_rows(
            statement, txn, initiator, snapshot, cost
        )

        if statement.where is not None:
            rows = [r for r in rows if predicate_holds(statement.where, r[1])]

        has_aggregate = any(item.aggregate for item in statement.items)
        if has_aggregate or statement.group_by:
            columns, out_rows = self._aggregate(statement, rows, initiator, cost)
        else:
            columns, out_rows = self._project(statement, rows, source_columns, cost)

        if statement.order_by:
            out_rows = self._order(statement, columns, out_rows)
        if statement.limit is not None:
            out_rows = out_rows[: statement.limit]
        result_rows = [row for __, row in out_rows]
        return ResultSet(columns, result_rows, cost=cost)

    def _source_rows(
        self,
        statement: ast.Select,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ) -> Tuple[List[Tuple[str, Dict[str, Any]]], List[str]]:
        if statement.source is None:
            return [(initiator, {})], []
        source = statement.source
        rows = self._relation_rows(
            source, txn, initiator, snapshot, cost, statement.where
        )
        columns = self._relation_columns(source.name)
        for join in statement.joins:
            right_rows = self._relation_rows(
                join.table, txn, initiator, snapshot, cost, None
            )
            right_columns = self._relation_columns(join.table.name)
            joined: List[Tuple[str, Dict[str, Any]]] = []
            for node, left_row in rows:
                for __, right_row in right_rows:
                    merged = dict(right_row)
                    merged.update(left_row)  # left wins on ambiguity
                    merged.update(
                        {k: v for k, v in right_row.items() if "." in k}
                    )
                    if predicate_holds(
                        join.condition, {**right_row, **left_row, **merged}
                    ):
                        joined.append((node, merged))
            rows = joined
            columns = columns + [c for c in right_columns if c not in columns]
        return rows, columns

    def _relation_columns(self, name: str) -> List[str]:
        db = self.database
        key = name.upper()
        if key == "V_MONITOR.STORAGE_CONTAINERS":
            return ["NODE_NAME", "TABLE_NAME", "CONTAINER_COUNT", "LIVE_ROWS"]
        if db.catalog.is_system_table(key):
            columns, __ = db.catalog.system_table_rows(
                key, db.epochs.current, db.node_states
            )
            return columns
        if db.catalog.has_view(key):
            view = db.catalog.view(key)
            return self._select_output_columns(view.query)
        return db.catalog.table(key).column_names()

    def _relation_rows(
        self,
        ref: ast.TableRef,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
        where: Optional[Expression],
    ) -> List[Tuple[str, Dict[str, Any]]]:
        db = self.database
        key = ref.name.upper()
        alias = (ref.alias or ref.name.split(".")[-1]).upper()
        if key == "V_MONITOR.STORAGE_CONTAINERS":
            from repro.vertica.tuplemover import storage_container_stats

            out = [
                (
                    initiator,
                    {
                        "NODE_NAME": node,
                        "TABLE_NAME": table,
                        "CONTAINER_COUNT": count,
                        "LIVE_ROWS": rows,
                    },
                )
                for node, table, count, rows in storage_container_stats(db)
            ]
        elif db.catalog.is_system_table(key):
            __, sys_rows = db.catalog.system_table_rows(
                key, db.epochs.current, db.node_states
            )
            out = [(initiator, dict(row)) for row in sys_rows]
        elif db.catalog.has_view(key):
            out = self._view_rows(key, txn, initiator, snapshot, cost)
        else:
            table = db.catalog.table(key)
            hash_range = extract_hash_range(where, table.segmentation_columns)
            out = [
                (scan_row.node, scan_row.data)
                for scan_row in db.engine.scan(
                    key, snapshot, txn, initiator, hash_range=hash_range, cost=cost
                )
            ]
        qualified = []
        for node, row in out:
            merged = dict(row)
            for column, value in row.items():
                if "." not in column:
                    merged[f"{alias}.{column}"] = value
            qualified.append((node, merged))
        return qualified

    def _view_rows(
        self,
        view_name: str,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        from repro.vertica.hashring import synthetic_ring, vertica_hash

        db = self.database
        view = db.catalog.view(view_name)
        query = view.query
        if query.at_epoch is None and snapshot is not None:
            query = ast.Select(
                query.items,
                query.source,
                joins=query.joins,
                where=query.where,
                group_by=query.group_by,
                having=query.having,
                order_by=query.order_by,
                limit=query.limit,
                at_epoch=snapshot,
            )
        result = self.select(query, txn, initiator, cost=cost)
        ring = synthetic_ring(db.node_names)
        out = []
        for row in result.rows:
            data = dict(zip(result.columns, row))
            values = [data[k] for k in sorted(data)]
            node = ring.node_for(vertica_hash(*values)) if values else initiator
            out.append((node, data))
        return out

    def _select_output_columns(self, statement: ast.Select) -> List[str]:
        out: List[str] = []
        for item in statement.items:
            if item.star:
                if statement.source is None:
                    raise SqlError("SELECT * requires a FROM clause")
                out.extend(self._relation_columns(statement.source.name))
                for join in statement.joins:
                    for column in self._relation_columns(join.table.name):
                        if column not in out:
                            out.append(column)
            else:
                out.append(self._item_name(item))
        return out

    @staticmethod
    def _item_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if item.aggregate:
            if item.aggregate_arg is None:
                return f"{item.aggregate}(*)"
            return f"{item.aggregate}({item.aggregate_arg.sql()})"
        if item.udf:
            return item.udf
        assert item.expression is not None
        if isinstance(item.expression, ColumnRef):
            return item.expression.name.split(".")[-1]
        return item.expression.sql()

    def _project(
        self,
        statement: ast.Select,
        rows: List[Tuple[str, Dict[str, Any]]],
        source_columns: List[str],
        cost: CostReport,
    ) -> Tuple[List[str], List[Tuple[str, Tuple[Any, ...]]]]:
        db = self.database
        columns: List[str] = []
        extractors = []
        for item in statement.items:
            if item.star:
                for column in source_columns:
                    columns.append(column)
                    extractors.append(lambda row, c=column: row.get(c))
            elif item.udf:
                columns.append(self._item_name(item))
                function = db.udx.lookup(item.udf)
                extractors.append(
                    lambda row, f=function, it=item: f(
                        [a.evaluate(row) for a in it.udf_args], it.parameters
                    )
                )
            else:
                columns.append(self._item_name(item))
                assert item.expression is not None
                extractors.append(lambda row, e=item.expression: e.evaluate(row))
        out: List[Tuple[str, Tuple[Any, ...]]] = []
        for node, row in rows:
            values = tuple(extract(row) for extract in extractors)
            nbytes = sum(_value_bytes(v) for v in values)
            cost.output(node, nbytes)
            out.append((node, values))
        return columns, out

    def _aggregate(
        self,
        statement: ast.Select,
        rows: List[Tuple[str, Dict[str, Any]]],
        initiator: str,
        cost: CostReport,
    ) -> Tuple[List[str], List[Tuple[str, Tuple[Any, ...]]]]:
        for node, __ in rows:
            cost.aggregated(node)
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        if statement.group_by:
            for __, row in rows:
                key = tuple(expr.evaluate(row) for expr in statement.group_by)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = [row for __, row in rows]

        columns = [self._item_name(item) for item in statement.items]
        out: List[Tuple[str, Tuple[Any, ...]]] = []
        for key in groups:
            group_rows = groups[key]
            values: List[Any] = []
            for item in statement.items:
                if item.aggregate:
                    values.append(self._aggregate_value(item, group_rows))
                elif item.expression is not None:
                    if not group_rows:
                        values.append(None)
                    else:
                        values.append(item.expression.evaluate(group_rows[0]))
                else:
                    raise SqlError("SELECT * cannot be combined with aggregates")
            row_tuple = tuple(values)
            if statement.having is not None:
                output_row = dict(zip(columns, row_tuple))
                if not predicate_holds(statement.having, output_row):
                    continue
            cost.output(initiator, sum(_value_bytes(v) for v in row_tuple))
            out.append((initiator, row_tuple))
        if not statement.group_by and not out:
            row_tuple = tuple(
                self._aggregate_value(item, []) if item.aggregate else None
                for item in statement.items
            )
            out.append((initiator, row_tuple))
        return columns, out

    @staticmethod
    def _aggregate_value(
        item: ast.SelectItem, group_rows: List[Dict[str, Any]]
    ) -> Any:
        name = item.aggregate
        if item.aggregate_arg is None:
            if name != "COUNT":
                raise SqlError(f"{name} requires an argument")
            return len(group_rows)
        values = [item.aggregate_arg.evaluate(row) for row in group_rows]
        values = [v for v in values if v is not None]
        if item.distinct:
            values = list(dict.fromkeys(values))
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise SqlError(f"unknown aggregate {name!r}")  # pragma: no cover

    def _order(
        self,
        statement: ast.Select,
        columns: List[str],
        out_rows: List[Tuple[str, Tuple[Any, ...]]],
    ) -> List[Tuple[str, Tuple[Any, ...]]]:
        def sort_key(entry: Tuple[str, Tuple[Any, ...]]):
            __, row = entry
            data = dict(zip(columns, row))
            key = []
            for order in statement.order_by:
                try:
                    value = order.expression.evaluate(data)
                except SqlError:
                    value = None
                null_rank = 1 if value is None else 0
                if order.descending:
                    key.append((null_rank, _Reversed(value)))
                else:
                    key.append((null_rank, _Sortable(value)))
            return tuple(key)

        return sorted(out_rows, key=sort_key)


class _Sortable:
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Sortable") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            return False
        try:
            return a < b
        except TypeError:
            return str(a) < str(b)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Sortable) and self.value == other.value


class _Reversed(_Sortable):
    def __lt__(self, other: "_Sortable") -> bool:  # type: ignore[override]
        a, b = self.value, other.value
        if a is None or b is None:
            return False
        try:
            return b < a
        except TypeError:
            return str(b) < str(a)
