"""Tests for adaptive query execution (join reordering + replanning).

Three layers, matching the three pieces of the subsystem:

- **Reordering** — ``SET JOIN_REORDER on`` lets the optimizer re-sequence
  multi-way equi-join chains by estimated cardinality.  The differential
  matrix proves the answer (rows, order, per-node cost attribution) stays
  byte-identical to the legacy oracle for 3–5-way joins under every
  combination of reorder/adaptive flags and strategy overrides.
- **Replanning** — ``SET ADAPTIVE_EXECUTION on`` lets join operators
  revise build side / algorithm at their materialization checkpoint.  A
  deliberately stale ANALYZE forces an order-of-magnitude misestimate and
  the recorded ``ReplanEvent`` must show up in PROFILE.
- **Feedback** — executed queries blend estimated-vs-actual scan counts
  into :class:`~repro.vertica.stats.feedback.CorrectionStore`; the second
  optimization of the same query must be strictly better-estimated and
  must not poison the originally cached plan.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vertica import VerticaDatabase
from repro.vertica.errors import SqlError
from repro.vertica.plan import bind_select, optimize
from repro.vertica.plan.adaptive import AdaptiveContext
from repro.vertica.plan.logical import Join, TableScan
from repro.vertica.plan.optimizer import RULE_JOIN_REORDER
from repro.vertica.sql.parser import parse_statement
from tests.test_plan_differential import assert_identical


def set_flags(db, reorder=False, adaptive=False, strategy="auto"):
    db.join_reorder = reorder
    db.adaptive_execution = adaptive
    db.join_strategy = strategy


def assert_identical_with_flags(db, sql, reorder, adaptive, strategy="auto"):
    set_flags(db, reorder, adaptive, strategy)
    try:
        assert_identical(db, sql)
    finally:
        set_flags(db)


def plan_text(session, sql):
    return "\n".join(r[0] for r in session.execute(sql).rows)


# --------------------------------------------------------------- star schema
def make_star_db(fact_rows=60, stale=True, analyzed_rows=12):
    """A 4-dim star with (optionally) deliberately stale fact statistics.

    Every plain column name is globally unique so reordering's
    name-resolution guard accepts the chain.  With ``stale`` the fact is
    ANALYZEd at ``analyzed_rows`` and then grown to ``fact_rows`` —
    estimates lag reality by the growth factor.
    """
    db = VerticaDatabase(num_nodes=4)
    session = db.connect()
    session.execute(
        "CREATE TABLE f (ka INTEGER, kb INTEGER, kc INTEGER, kd INTEGER, "
        "v FLOAT) SEGMENTED BY HASH(ka) ALL NODES"
    )
    session.execute(
        "CREATE TABLE dima (a_id INTEGER, a_val INTEGER) "
        "SEGMENTED BY HASH(a_id) ALL NODES"
    )
    session.execute(
        "CREATE TABLE dimb (b_id INTEGER, b_val INTEGER) UNSEGMENTED ALL NODES"
    )
    session.execute(
        "CREATE TABLE dimc (c_id INTEGER, c_val INTEGER) "
        "SEGMENTED BY HASH(c_id) ALL NODES"
    )
    session.execute(
        "CREATE TABLE dimd (d_id INTEGER, d_val INTEGER) UNSEGMENTED ALL NODES"
    )
    session.execute(
        "INSERT INTO dima VALUES "
        + ", ".join(f"({i}, {i * 10})" for i in range(6))
    )
    session.execute(
        "INSERT INTO dimb VALUES "
        + ", ".join(f"({i}, {i * 7})" for i in range(4))
    )
    session.execute(
        "INSERT INTO dimc VALUES " + ", ".join(f"({i}, {i + 100})" for i in range(3))
    )
    # dimd is deliberately selective: only two of five kd values match.
    session.execute("INSERT INTO dimd VALUES (0, 1), (1, 2)")

    def fact_values(start, stop):
        return ", ".join(
            f"({i % 6}, {i % 4}, {i % 3}, {i % 5}, {i}.5)"
            for i in range(start, stop)
        )

    first = min(analyzed_rows, fact_rows)
    session.execute("INSERT INTO f VALUES " + fact_values(0, first))
    for name in ("f", "dima", "dimb", "dimc", "dimd"):
        session.execute(f"ANALYZE {name}")
    if fact_rows > first:
        session.execute("INSERT INTO f VALUES " + fact_values(first, fact_rows))
        if not stale:
            session.execute("ANALYZE f")
    return db


@pytest.fixture(scope="module")
def star_db():
    return make_star_db()


THREE_WAY = (
    "SELECT v, a_val, b_val FROM f JOIN dima ON ka = a_id "
    "JOIN dimb ON kb = b_id"
)
FOUR_WAY = THREE_WAY + " JOIN dimc ON kc = c_id"
FIVE_WAY = FOUR_WAY + " JOIN dimd ON kd = d_id"

STAR_MATRIX = [
    THREE_WAY,
    FOUR_WAY,
    FIVE_WAY,
    FIVE_WAY + " WHERE b_val > 2",
    "SELECT a_val, COUNT(*) FROM f JOIN dima ON ka = a_id "
    "JOIN dimd ON kd = d_id GROUP BY a_val ORDER BY a_val",
    # selective dim written last in FROM order: reordering moves it first
    "SELECT v, d_val FROM f JOIN dima ON ka = a_id JOIN dimb ON kb = b_id "
    "JOIN dimd ON kd = d_id WHERE d_val > 1",
]


class TestAdaptiveDifferential:
    """Rows/order/cost stay byte-identical with every adaptivity flag."""

    @pytest.mark.parametrize("adaptive", [False, True])
    @pytest.mark.parametrize("reorder", [False, True])
    @pytest.mark.parametrize("sql", STAR_MATRIX)
    def test_star_matrix(self, star_db, sql, reorder, adaptive):
        assert_identical_with_flags(star_db, sql, reorder, adaptive)

    @pytest.mark.parametrize(
        "strategy", ["auto", "hash", "merge", "nested-loop"]
    )
    @pytest.mark.parametrize("reorder", [False, True])
    def test_five_way_under_strategy_override(self, star_db, reorder, strategy):
        assert_identical_with_flags(
            star_db, FIVE_WAY, reorder, adaptive=True, strategy=strategy
        )

    def test_fresh_stats_matrix(self):
        db = make_star_db(stale=False)
        for sql in (THREE_WAY, FIVE_WAY):
            assert_identical_with_flags(db, sql, reorder=True, adaptive=True)


# ----------------------------------------------------------- reordering plan
class TestJoinReorderPlan:
    def test_explain_renders_join_order(self, star_db):
        session = star_db.connect()
        session.execute("SET JOIN_REORDER on")
        try:
            plan = plan_text(session, f"EXPLAIN {FIVE_WAY}")
        finally:
            session.execute("SET JOIN_REORDER off")
        assert "JOIN ORDER:" in plan
        assert "(reordered from" in plan
        assert "step 1:" in plan
        assert RULE_JOIN_REORDER in plan

    def test_selective_dim_joins_first(self, star_db):
        # dimd keeps only 2/5 of kd values; a cardinality-greedy order
        # must join it before the wider dima/dimb dims.
        session = star_db.connect()
        session.execute("SET JOIN_REORDER on")
        try:
            plan = plan_text(session, f"EXPLAIN {FIVE_WAY}")
        finally:
            session.execute("SET JOIN_REORDER off")
        order_line = next(
            line for line in plan.splitlines() if "JOIN ORDER:" in line
        )
        assert order_line.index("DIMD") < order_line.index("DIMA")

    def test_reorder_off_keeps_binder_order(self, star_db):
        session = star_db.connect()
        plan = plan_text(session, f"EXPLAIN {FIVE_WAY}")
        assert "JOIN ORDER:" not in plan
        assert RULE_JOIN_REORDER not in plan

    def test_two_way_join_never_reordered(self, star_db):
        session = star_db.connect()
        session.execute("SET JOIN_REORDER on")
        try:
            plan = plan_text(
                session, "EXPLAIN SELECT v, a_val FROM f JOIN dima ON ka = a_id"
            )
        finally:
            session.execute("SET JOIN_REORDER off")
        assert "JOIN ORDER:" not in plan

    def test_colocated_chain_stays_shuffle_free(self):
        # Both sides segmented by their join key: co-location means no
        # shuffle, and reordering must preserve that property.
        db = VerticaDatabase(num_nodes=4)
        session = db.connect()
        session.execute(
            "CREATE TABLE ft (fk INTEGER, fv INTEGER) "
            "SEGMENTED BY HASH(fk) ALL NODES"
        )
        session.execute(
            "CREATE TABLE d1 (k1 INTEGER, x1 INTEGER) "
            "SEGMENTED BY HASH(k1) ALL NODES"
        )
        session.execute(
            "CREATE TABLE d2 (k2 INTEGER, x2 INTEGER) "
            "SEGMENTED BY HASH(k2) ALL NODES"
        )
        session.execute(
            "INSERT INTO ft VALUES " + ", ".join(f"({i % 5}, {i})" for i in range(20))
        )
        session.execute(
            "INSERT INTO d1 VALUES " + ", ".join(f"({i}, {i})" for i in range(5))
        )
        session.execute("INSERT INTO d2 VALUES (0, 0), (1, 1)")
        for name in ("ft", "d1", "d2"):
            session.execute(f"ANALYZE {name}")
        session.execute("SET JOIN_REORDER on")
        sql = (
            "PROFILE SELECT fv, x1, x2 FROM ft JOIN d1 ON fk = k1 "
            "JOIN d2 ON fk = k2"
        )
        report = plan_text(session, sql)
        assert "JOIN ORDER:" in report
        # The co-located pair joins shuffle-free even after reordering;
        # only the upper join against the (unsegmentable) intermediate
        # result may shuffle, exactly as it would in binder order.
        colocated_line = next(
            line for line in report.splitlines() if "JOIN D2" in line
        )
        assert "co-located" in colocated_line
        assert "rows shuffled" not in colocated_line


# ------------------------------------------------------------- replanning
def make_misestimated_db(analyzed=20, grown=400, dim_rows=30):
    """Fact ANALYZEd small then grown: the planner builds on the fact."""
    db = VerticaDatabase(num_nodes=4)
    session = db.connect()
    session.execute(
        "CREATE TABLE fact (fk INTEGER, fv FLOAT) SEGMENTED BY HASH(fk) ALL NODES"
    )
    session.execute(
        "CREATE TABLE dim (dk INTEGER, dv INTEGER) UNSEGMENTED ALL NODES"
    )
    session.execute(
        "INSERT INTO fact VALUES "
        + ", ".join(f"({i % dim_rows}, {i}.0)" for i in range(analyzed))
    )
    session.execute(
        "INSERT INTO dim VALUES "
        + ", ".join(f"({i}, {i * 3})" for i in range(dim_rows))
    )
    session.execute("ANALYZE fact")
    session.execute("ANALYZE dim")
    session.execute(
        "INSERT INTO fact VALUES "
        + ", ".join(f"({i % dim_rows}, {i}.0)" for i in range(analyzed, grown))
    )
    return db


JOIN_SQL = "SELECT fv, dv FROM fact JOIN dim ON fk = dk"


class TestMidQueryReplanning:
    def test_swap_build_recorded_in_profile(self):
        db = make_misestimated_db()
        session = db.connect()
        session.execute("SET ADAPTIVE_EXECUTION on")
        report = plan_text(session, f"PROFILE {JOIN_SQL}")
        assert "REPLAN:" in report
        assert "swap-build" in report
        assert "misestimate" in report

    def test_adaptive_rows_match_frozen_rows(self):
        frozen = make_misestimated_db().connect().execute(JOIN_SQL)
        adaptive_db = make_misestimated_db()
        session = adaptive_db.connect()
        session.execute("SET ADAPTIVE_EXECUTION on")
        adaptive = session.execute(JOIN_SQL)
        assert adaptive.rows == frozen.rows
        assert adaptive.columns == frozen.columns

    def test_no_replan_when_adaptivity_off(self):
        db = make_misestimated_db()
        report = plan_text(db.connect(), f"PROFILE {JOIN_SQL}")
        assert "REPLAN:" not in report

    def test_strategy_override_pins_algorithm(self):
        # An explicit SET JOIN_STRATEGY is never second-guessed.
        db = make_misestimated_db()
        session = db.connect()
        session.execute("SET ADAPTIVE_EXECUTION on")
        session.execute("SET JOIN_STRATEGY hash")
        report = plan_text(session, f"PROFILE {JOIN_SQL}")
        assert "REPLAN:" not in report

    def test_checkpoint_swap_then_demote(self):
        context = AdaptiveContext(enabled=True, memory_rows=100)
        join = Join(
            left=_scan_stub(estimated=20),
            right=_scan_stub(estimated=500),
            condition=_condition_stub(),
        )
        join.strategy = "hash"
        join.build_side = "left"
        join.keys_sortable = True
        build, strategy = context.checkpoint_hash(join, 400, 150)
        assert (build, strategy) == ("right", "merge")
        actions = [event.action for event in context.events]
        assert actions == ["swap-build", "demote-merge"]

    def test_checkpoint_promote_hash(self):
        context = AdaptiveContext(enabled=True, memory_rows=100)
        join = Join(
            left=_scan_stub(estimated=5),
            right=_scan_stub(estimated=100_000),
            condition=_condition_stub(),
        )
        join.strategy = "merge"
        join.build_side = "right"
        build, strategy = context.checkpoint_merge(join, 5, 40)
        assert (build, strategy) == ("right", "hash")
        assert [event.action for event in context.events] == ["promote-hash"]

    def test_inactive_context_never_replans(self):
        context = AdaptiveContext(enabled=True, strategy_override="merge")
        assert not context.active
        join = Join(
            left=_scan_stub(estimated=1), right=_scan_stub(estimated=1),
            condition=_condition_stub(),
        )
        join.build_side = "left"
        assert context.checkpoint_hash(join, 10_000_000, 1) == ("left", "hash")
        assert context.events == []


def _scan_stub(estimated):
    class _Stub:
        key = "DIM"
        estimated_rows = estimated
    _Stub.estimated_rows = estimated
    return _Stub()


def _condition_stub():
    class _Cond:
        def sql(self):
            return "FK = DK"
    return _Cond()


# ------------------------------------------------------------ feedback loop
def scan_estimate(db, sql, table):
    plan = optimize(bind_select(db, parse_statement(sql)), db)
    for node in plan.nodes():
        if isinstance(node, TableScan) and node.table.name == table:
            return node.estimated_rows
    raise AssertionError(f"no scan of {table} in plan for {sql}")


class TestFeedbackLoop:
    def test_second_plan_strictly_better_estimated(self):
        db = make_misestimated_db(analyzed=20, grown=400)
        table = db.catalog.table("fact").name
        actual = 400
        before = scan_estimate(db, JOIN_SQL, table)
        session = db.connect()
        session.execute("SET ADAPTIVE_EXECUTION on")
        session.execute(JOIN_SQL)
        after = scan_estimate(db, JOIN_SQL, table)
        assert abs(after - actual) < abs(before - actual)
        assert db.stats_corrections.factor(table) > 1.0
        assert db.stats_corrections.version > 0

    def test_feedback_does_not_poison_plan_cache(self):
        db = make_misestimated_db()
        session = db.connect()
        session.execute("SET ADAPTIVE_EXECUTION on")
        session.execute(JOIN_SQL)  # optimized at corrections_version=0
        version_zero_plans = db.plan_cache.plan_count
        session.execute(JOIN_SQL)  # re-optimized against the correction
        assert db.stats_corrections.version > 0
        assert db.plan_cache.plan_count == version_zero_plans + 1

    def test_analyze_forgets_correction(self):
        db = make_misestimated_db()
        table = db.catalog.table("fact").name
        session = db.connect()
        session.execute("SET ADAPTIVE_EXECUTION on")
        session.execute(JOIN_SQL)
        assert db.stats_corrections.factor(table) > 1.0
        session.execute("ANALYZE fact")
        assert db.stats_corrections.factor(table) == 1.0

    def test_correction_clamped_and_blended(self):
        from repro.vertica.stats.feedback import CorrectionStore

        store = CorrectionStore(name="test.feedback")
        assert store.factor("T") == 1.0
        assert store.record("T", estimated=10, actual=100)
        # EWMA with weight 0.5: 0.5*1.0 + 0.5*10.0
        assert store.factor("T") == pytest.approx(5.5)
        store.record("T", estimated=1, actual=10_000_000)
        assert store.factor("T") <= 1000.0 / 2 + 5.5 / 2 + 1e-9
        store.forget("T")
        assert store.factor("T") == 1.0

    def test_immaterial_move_does_not_bump_version(self):
        from repro.vertica.stats.feedback import CorrectionStore

        store = CorrectionStore(name="test.feedback")
        assert not store.record("T", estimated=100, actual=102)
        assert store.version == 0


# ------------------------------------------------------------- SET options
class TestSetOptionValidation:
    @pytest.mark.parametrize(
        "option, good",
        [
            ("JOIN_REORDER", "on"),
            ("ADAPTIVE_EXECUTION", "on"),
        ],
    )
    def test_flags_round_trip(self, option, good):
        db = VerticaDatabase(num_nodes=2)
        session = db.connect()
        attr = option.lower()
        session.execute(f"SET {option} {good}")
        assert getattr(db, attr) is True
        session.execute(f"SET {option} off")
        assert getattr(db, attr) is False

    @pytest.mark.parametrize(
        "statement, fragments",
        [
            ("SET JOIN_STRATEGY sideways",
             ["SIDEWAYS", "auto", "hash", "merge", "nested-loop"]),
            ("SET JOIN_REORDER maybe", ["MAYBE", "on", "off"]),
            ("SET ADAPTIVE_EXECUTION definitely", ["DEFINITELY", "on", "off"]),
        ],
    )
    def test_invalid_value_names_value_and_choices(self, statement, fragments):
        session = VerticaDatabase(num_nodes=2).connect()
        with pytest.raises(SqlError) as err:
            session.execute(statement)
        for fragment in fragments:
            assert fragment in str(err.value)


# ----------------------------------------------------- randomized stale stats
class TestRandomizedStaleStats:
    @given(
        analyzed=st.integers(min_value=1, max_value=8),
        growth=st.integers(min_value=1, max_value=30),
        dims=st.integers(min_value=1, max_value=8),
        reorder=st.booleans(),
        strategy=st.sampled_from(["auto", "hash", "merge"]),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_stale_stats_never_change_answers(
        self, analyzed, growth, dims, reorder, strategy
    ):
        db = VerticaDatabase(num_nodes=3)
        session = db.connect()
        session.execute(
            "CREATE TABLE sf (k INTEGER, m INTEGER) "
            "SEGMENTED BY HASH(k) ALL NODES"
        )
        session.execute(
            "CREATE TABLE sd (k2 INTEGER, n INTEGER) UNSEGMENTED ALL NODES"
        )
        session.execute(
            "CREATE TABLE se (k3 INTEGER, p INTEGER) "
            "SEGMENTED BY HASH(k3) ALL NODES"
        )
        session.execute(
            "INSERT INTO sf VALUES "
            + ", ".join(f"({i % 7}, {i})" for i in range(analyzed))
        )
        session.execute(
            "INSERT INTO sd VALUES "
            + ", ".join(f"({i}, {i * 2})" for i in range(dims))
        )
        session.execute(
            "INSERT INTO se VALUES "
            + ", ".join(f"({i}, {i + 9})" for i in range(dims))
        )
        for name in ("sf", "sd", "se"):
            session.execute(f"ANALYZE {name}")
        total = analyzed * growth
        if total > analyzed:
            session.execute(
                "INSERT INTO sf VALUES "
                + ", ".join(f"({i % 7}, {i})" for i in range(analyzed, total))
            )
        sql = "SELECT m, n, p FROM sf JOIN sd ON k = k2 JOIN se ON k = k3"
        assert_identical_with_flags(
            db, sql, reorder=reorder, adaptive=True, strategy=strategy
        )
