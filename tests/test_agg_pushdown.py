"""Aggregate pushdown: partition-wise partial aggregation (PR 3).

Differential coverage: every aggregate function, over NULL-bearing
columns, on segmented tables, unsegmented tables and views, with and
without task retries, must return byte-identical results to the
Spark-side fallback path (``agg_pushdown=False``).  Plus regression
tests for the four bugfixes that rode along: count() honouring residual
filters, empty ``IN ()`` rendering, descending NULL ordering, and
epoch-pinned view schema discovery.
"""

import pytest

from repro import telemetry
from repro.connector import SimVerticaCluster
from repro.sim import Environment
from repro.spark import SparkSession
from repro.spark.datasource import BaseRelation, Filter, GreaterThan, In
from repro.spark.faults import FailureRatePolicy
from repro.spark.row import StructField, StructType
from repro.vertica.session import Session

AGG_FNS = ("count", "sum", "avg", "min", "max")

#: (k, a, b) with NULLs sprinkled into both value columns and group
#: k=6 holding only NULL ``a`` values (all-NULL group edge case)
ROWS = [
    (
        i % 7,
        None if (i % 7 == 6 or i % 3 == 0) else i,
        None if i % 4 == 0 else i * 0.5,
    )
    for i in range(60)
]


@pytest.fixture
def fabric():
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vc.sim_cluster, num_workers=8)
    return vc, spark


@pytest.fixture
def loaded(fabric):
    vc, spark = fabric
    session = vc.db.connect()
    literals = ", ".join(
        "(" + ", ".join("NULL" if v is None else str(v) for v in row) + ")"
        for row in ROWS
    )
    session.execute(
        "CREATE TABLE seg (k INTEGER, a INTEGER, b FLOAT) "
        "SEGMENTED BY HASH(k) ALL NODES"
    )
    session.execute(f"INSERT INTO seg VALUES {literals}")
    session.execute(
        "CREATE TABLE unseg (k INTEGER, a INTEGER, b FLOAT) "
        "UNSEGMENTED ALL NODES"
    )
    session.execute(f"INSERT INTO unseg VALUES {literals}")
    session.execute("CREATE VIEW segview AS SELECT k, a, b FROM seg")
    return vc, spark, session


def read(vc, spark, table, **extra):
    options = {"db": vc, "table": table, "numpartitions": 8}
    options.update(extra)
    return spark.read.format("vertica").options(options).load()


def agg_rows(vc, spark, table, specs, pushdown, **extra):
    df = read(vc, spark, table, agg_pushdown=pushdown, **extra)
    return df.group_by("k").agg(*specs).collect()


def canonical(rows):
    """Order-free but otherwise byte-exact comparison key (1 != 1.0)."""
    return sorted(map(repr, rows))


class TestDifferentialMatrix:
    """Pushdown must be byte-identical to the Spark-side fallback."""

    @pytest.mark.parametrize("table", ["seg", "unseg", "segview"])
    @pytest.mark.parametrize("fn", AGG_FNS)
    def test_each_function_each_relation_kind(self, loaded, table, fn):
        vc, spark, __ = loaded
        specs = [("a", fn), ("b", fn)] if fn != "count" else [
            ("*", "count"), ("a", "count"), ("b", "count")
        ]
        pushed = agg_rows(vc, spark, table, specs, pushdown=True)
        fallback = agg_rows(vc, spark, table, specs, pushdown=False)
        assert canonical(pushed) == canonical(fallback)
        assert len(pushed) == 7  # one output row per group

    @pytest.mark.parametrize("table", ["seg", "unseg", "segview"])
    def test_mixed_functions_with_filter(self, loaded, table):
        vc, spark, __ = loaded
        specs = [("*", "count"), ("a", "sum"), ("a", "avg"),
                 ("b", "min"), ("b", "max")]
        pushed = read(vc, spark, table).filter(
            GreaterThan("a", 10)
        ).group_by("k").agg(*specs).collect()
        fallback = read(vc, spark, table, agg_pushdown=False).filter(
            GreaterThan("a", 10)
        ).group_by("k").agg(*specs).collect()
        assert canonical(pushed) == canonical(fallback)

    def test_survives_task_retries(self, loaded):
        """Partial-aggregate tasks restarted by FailureRatePolicy still
        merge to the exact fallback answer (epoch pinning + idempotent
        range queries)."""
        vc, __, ___ = loaded

        class Policy(FailureRatePolicy):
            def on_task_start(self, ctx):
                self.on_probe(ctx, self.label)

        policy = Policy(0.4, label="start")
        flaky = SparkSession(
            env=vc.env, cluster=vc.sim_cluster, num_workers=8,
            fault_policy=policy, worker_prefix="flaky",
        )
        specs = [("*", "count"), ("a", "sum"), ("a", "avg"),
                 ("b", "min"), ("b", "max")]
        pushed = agg_rows(vc, flaky, "seg", specs, pushdown=True)
        fallback = agg_rows(vc, flaky, "seg", specs, pushdown=False)
        assert policy.injected, "the policy never actually killed a task"
        assert canonical(pushed) == canonical(fallback)


class TestOneQueryPerRange:
    """Acceptance: one GROUP BY query per hash-range task, one epoch."""

    def test_query_plan_shape(self, loaded, monkeypatch):
        vc, spark, __ = loaded
        captured = []
        original = Session.execute

        def spy(self, sql, copy_data=None):
            captured.append(sql)
            return original(self, sql, copy_data=copy_data)

        monkeypatch.setattr(Session, "execute", spy)
        df = read(vc, spark, "seg")
        df.group_by("k").agg(("a", "sum"), ("a", "avg")).collect()

        group_queries = [s for s in captured if "GROUP BY" in s]
        plan = df._relation.ring.partition_plan(8)
        num_ranges = sum(len(split) for split in plan)
        assert len(group_queries) == num_ranges
        assert all(s.startswith("AT EPOCH ") for s in group_queries)
        epochs = {s.split()[2] for s in group_queries}
        assert len(epochs) == 1, f"tasks pinned different epochs: {epochs}"
        # avg decomposes into SUM + COUNT partials, deduplicated
        assert all("SUM(A)" in s and "COUNT(A)" in s for s in group_queries)
        assert all(s.count("SUM(A)") == 1 for s in group_queries)

    def test_wire_counters_show_savings(self, loaded):
        vc, spark, __ = loaded
        telemetry.install(telemetry.MetricsRegistry(enabled=True).bind(vc.env))
        try:
            read(vc, spark, "seg").group_by("k").agg(("a", "sum")).collect()
            partial = telemetry.counter("v2s.agg_pushdown.partial_rows").value
            aggregated = telemetry.counter(
                "v2s.agg_pushdown.rows_aggregated"
            ).value
            saved = telemetry.counter("v2s.agg_pushdown.rows_saved").value
            assert 0 < partial < len(ROWS)
            assert aggregated == len(ROWS)
            assert saved == aggregated - partial
        finally:
            telemetry.reset()

    def test_option_disables_pushdown(self, loaded):
        vc, spark, __ = loaded
        telemetry.install(telemetry.MetricsRegistry(enabled=True).bind(vc.env))
        try:
            agg_rows(vc, spark, "seg", [("a", "sum")], pushdown=False)
            assert telemetry.counter("v2s.agg_pushdown.jobs").value == 0
            assert telemetry.counter("v2s.rows_fetched").value == len(ROWS)
        finally:
            telemetry.reset()


class _ResidualRelation(BaseRelation):
    """A stub source that declines every pushdown filter."""

    SCHEMA = StructType([StructField("a", "long")])
    ROWS = [(1,), (2,), (None,)]

    def __init__(self, session):
        self.session = session
        self.count_calls = 0

    @property
    def schema(self):
        return self.SCHEMA

    def unhandled_filters(self, filters):
        return list(filters)  # everything is residual

    def build_scan(self, required_columns=None, filters=()):
        return self.session.parallelize(self.ROWS, 1)

    def count(self, filters=()):
        self.count_calls += 1
        return len(self.ROWS)  # ignores filters — wrong if any are residual


class TestResidualFilterBugfixes:
    """count()/agg() must not push past filters the source cannot handle."""

    @pytest.fixture
    def df(self):
        from repro.spark.dataframe import DataFrame

        spark = SparkSession(num_workers=2)
        relation = _ResidualRelation(spark)
        frame = DataFrame(spark, relation.schema, relation=relation)
        return frame, relation

    def test_count_respects_residual_filters(self, df):
        frame, relation = df
        filtered = frame.filter(GreaterThan("a", 1))
        # Regression: count() used to call relation.count() here, which
        # ignores the residual filter and would have returned 3.
        assert filtered.count() == 1
        assert relation.count_calls == 0

    def test_unfiltered_count_still_pushes(self, df):
        frame, relation = df
        assert frame.count() == 3
        assert relation.count_calls == 1

    def test_agg_falls_back_on_residual_filters(self, df):
        frame, __ = df
        out = frame.filter(GreaterThan("a", 1)).group_by("a").count()
        assert out.collect() == [(2, 1)]


class TestEmptyInFilter:
    """Empty ``IN ()`` must render as FALSE, not a syntax error."""

    def test_to_sql(self):
        assert In("a", ()).to_sql() == "FALSE"
        assert In("a", (1, 2)).to_sql() == "a IN (1, 2)"

    def test_pushed_empty_in_matches_spark_side(self, loaded):
        vc, spark, __ = loaded
        pushed = read(vc, spark, "seg").filter(In("k", ())).collect()
        spark_side = [r for r in ROWS if In("k", ()).evaluate(r[0])]
        assert pushed == spark_side == []


class TestDescendingNullOrder:
    """order_by(descending=True) keeps NULLs last, like the engine."""

    def test_matches_engine_order_by_desc(self, loaded):
        vc, spark, __ = loaded
        engine = vc.db.connect().execute(
            "SELECT a FROM seg ORDER BY a DESC"
        ).rows
        df = spark.create_dataframe(
            [(r[1],) for r in ROWS],
            StructType([StructField("a", "long")]),
            num_partitions=3,
        )
        # Regression: descending used to reverse the whole (is_null, value)
        # key, floating NULLs to the front while the engine kept them last.
        assert df.order_by("a", descending=True).collect() == engine

    def test_nulls_last_both_directions(self, fabric):
        __, spark = fabric
        schema = StructType([StructField("x", "long")])
        df = spark.create_dataframe(
            [(None,), (3,), (1,), (None,), (2,)], schema, num_partitions=2
        )
        ascending = [r[0] for r in df.order_by("x").collect()]
        descending = [r[0] for r in df.order_by("x", descending=True).collect()]
        assert ascending == [1, 2, 3, None, None]
        assert descending == [3, 2, 1, None, None]


class TestEpochPinnedDiscovery:
    """View schema discovery must sample at a pinned epoch."""

    def test_concurrent_writer_cannot_tear_discovery(self, fabric, monkeypatch):
        vc, spark = fabric
        session = vc.db.connect()
        session.execute("CREATE TABLE base (n INTEGER)")
        session.execute("CREATE VIEW empty_view AS SELECT n FROM base")

        original = Session.execute

        def racing_writer(self, sql, copy_data=None):
            if sql.startswith("AT EPOCH") and "LIMIT 1" in sql:
                # A writer commits between discovery's epoch pin and its
                # schema sample — the torn-snapshot window the fix closes.
                writer = vc.db.connect()
                writer.execute("INSERT INTO base VALUES (42)")
                writer.close()
            return original(self, sql, copy_data=copy_data)

        monkeypatch.setattr(Session, "execute", racing_writer)
        df = spark.read.format("vertica").options(
            db=vc, table="empty_view", numpartitions=4
        ).load()
        # The pinned sample sees the pre-write (empty) snapshot: NULL-only
        # columns infer "string".  Without AT EPOCH the racing row leaks
        # in and the same column infers "long".
        assert [f.data_type for f in df.schema] == ["string"]
        # The row is still visible to scans pinned after the commit.
        assert df.collect() == [(42,)]
