"""Unit and property tests for the Avro-like serialization substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avrolite import (
    BinaryDecoder,
    BinaryEncoder,
    CodecError,
    ContainerReader,
    ContainerWriter,
    DatumReader,
    DatumWriter,
    Schema,
    SchemaError,
    compress_block,
    decode_rows,
    decompress_block,
    encode_rows,
)
from repro.avrolite.io import zigzag_decode, zigzag_encode


class TestZigzag:
    @pytest.mark.parametrize(
        "value,encoded",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294)],
    )
    def test_known_values(self, value, encoded):
        assert zigzag_encode(value) == encoded
        assert zigzag_decode(encoded) == value

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_round_trip(self, value):
        assert zigzag_decode(zigzag_encode(value) & ((1 << 64) - 1)) == value


class TestBinaryIO:
    def test_long_round_trip_boundaries(self):
        enc = BinaryEncoder()
        values = [0, 1, -1, 63, -64, 64, 2**31 - 1, -(2**31), 2**63 - 1, -(2**63)]
        for v in values:
            enc.write_long(v)
        dec = BinaryDecoder(enc.getvalue())
        assert [dec.read_long() for __ in values] == values
        assert dec.exhausted

    def test_small_longs_are_one_byte(self):
        enc = BinaryEncoder()
        enc.write_long(0)
        enc.write_long(-1)
        enc.write_long(1)
        assert len(enc) == 3

    def test_string_round_trip_unicode(self):
        enc = BinaryEncoder()
        enc.write_string("héllo wörld ✓")
        assert BinaryDecoder(enc.getvalue()).read_string() == "héllo wörld ✓"

    def test_double_round_trip(self):
        enc = BinaryEncoder()
        enc.write_double(3.141592653589793)
        assert BinaryDecoder(enc.getvalue()).read_double() == 3.141592653589793

    def test_truncated_data_raises(self):
        enc = BinaryEncoder()
        enc.write_string("hello")
        data = enc.getvalue()[:-2]
        with pytest.raises(SchemaError):
            BinaryDecoder(data).read_string()

    def test_truncated_varint_raises(self):
        with pytest.raises(SchemaError):
            BinaryDecoder(b"\x80").read_long()

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_long_property_round_trip(self, value):
        enc = BinaryEncoder()
        enc.write_long(value)
        assert BinaryDecoder(enc.getvalue()).read_long() == value


class TestSchema:
    def test_primitive_json_round_trip(self):
        schema = Schema.primitive("double")
        assert Schema.loads(schema.dumps()) == schema

    def test_record_json_round_trip(self):
        schema = Schema.record(
            "tweet",
            [
                ("tweet_id", Schema.primitive("long")),
                ("tweet_text", Schema.primitive("string", nullable=True)),
            ],
        )
        parsed = Schema.loads(schema.dumps())
        assert parsed == schema
        assert parsed.field("tweet_text").nullable

    def test_array_schema(self):
        schema = Schema.array(Schema.primitive("double"))
        assert Schema.loads(schema.dumps()) == schema

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            Schema.record("r", [("a", Schema.primitive("int"))] * 2)

    def test_record_requires_name(self):
        with pytest.raises(SchemaError):
            Schema("record", fields=[])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            Schema("uuid")

    def test_unsupported_union_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_json(["int", "string"])

    def test_validate_accepts_matching_row(self):
        schema = Schema.record(
            "r", [("a", Schema.primitive("long")), ("b", Schema.primitive("string"))]
        )
        schema.validate((1, "x"))
        schema.validate({"a": 1, "b": "x"})

    def test_validate_rejects_type_mismatch(self):
        schema = Schema.record("r", [("a", Schema.primitive("long"))])
        with pytest.raises(SchemaError):
            schema.validate(("not a long",))

    def test_validate_rejects_null_in_non_nullable(self):
        schema = Schema.record("r", [("a", Schema.primitive("long"))])
        with pytest.raises(SchemaError):
            schema.validate((None,))

    def test_validate_rejects_out_of_range_int(self):
        with pytest.raises(SchemaError):
            Schema.primitive("int").validate(2**40)

    def test_validate_wrong_arity(self):
        schema = Schema.record("r", [("a", Schema.primitive("long"))])
        with pytest.raises(SchemaError):
            schema.validate((1, 2))

    def test_field_lookup_missing(self):
        schema = Schema.record("r", [("a", Schema.primitive("long"))])
        with pytest.raises(SchemaError):
            schema.field("zzz")


ROW_SCHEMA = Schema.record(
    "row",
    [
        ("id", Schema.primitive("long")),
        ("score", Schema.primitive("double")),
        ("label", Schema.primitive("string", nullable=True)),
        ("flag", Schema.primitive("boolean")),
    ],
)


class TestDatumRoundTrip:
    def test_record_round_trip(self):
        enc = BinaryEncoder()
        DatumWriter(ROW_SCHEMA).write((7, 0.5, "yes", True), enc)
        out = DatumReader(ROW_SCHEMA).read(BinaryDecoder(enc.getvalue()))
        assert out == (7, 0.5, "yes", True)

    def test_null_branch(self):
        enc = BinaryEncoder()
        DatumWriter(ROW_SCHEMA).write((7, 0.5, None, False), enc)
        out = DatumReader(ROW_SCHEMA).read(BinaryDecoder(enc.getvalue()))
        assert out == (7, 0.5, None, False)

    def test_dict_datum(self):
        enc = BinaryEncoder()
        DatumWriter(ROW_SCHEMA).write(
            {"id": 1, "score": 2.0, "label": "a", "flag": False}, enc
        )
        out = DatumReader(ROW_SCHEMA).read(BinaryDecoder(enc.getvalue()))
        assert out == (1, 2.0, "a", False)

    def test_array_round_trip(self):
        schema = Schema.array(Schema.primitive("long"))
        enc = BinaryEncoder()
        DatumWriter(schema).write([1, 2, 3], enc)
        assert DatumReader(schema).read(BinaryDecoder(enc.getvalue())) == [1, 2, 3]

    def test_empty_array(self):
        schema = Schema.array(Schema.primitive("long"))
        enc = BinaryEncoder()
        DatumWriter(schema).write([], enc)
        assert DatumReader(schema).read(BinaryDecoder(enc.getvalue())) == []

    def test_none_in_non_nullable_raises(self):
        enc = BinaryEncoder()
        with pytest.raises(SchemaError):
            DatumWriter(Schema.primitive("long")).write(None, enc)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
                st.floats(allow_nan=False, allow_infinity=False),
                st.one_of(st.none(), st.text(max_size=40)),
                st.booleans(),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, rows):
        data = encode_rows(ROW_SCHEMA, rows, codec="null")
        assert decode_rows(data) == rows


class TestCodecs:
    def test_null_codec_is_identity(self):
        assert compress_block("null", b"abc") == b"abc"
        assert decompress_block("null", b"abc") == b"abc"

    def test_deflate_round_trip(self):
        data = b"hello " * 1000
        compressed = compress_block("deflate", data)
        assert len(compressed) < len(data)
        assert decompress_block("deflate", compressed) == data

    def test_unknown_codec(self):
        with pytest.raises(CodecError):
            compress_block("snappy", b"x")

    def test_corrupt_deflate(self):
        with pytest.raises(CodecError):
            decompress_block("deflate", b"\x00garbage")

    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_deflate_property(self, data):
        assert decompress_block("deflate", compress_block("deflate", data)) == data


class TestContainer:
    def test_round_trip_with_blocks(self):
        rows = [(i, float(i), f"r{i}", i % 2 == 0) for i in range(1000)]
        writer = ContainerWriter(ROW_SCHEMA, codec="deflate", block_rows=100)
        writer.extend(rows)
        data = writer.getvalue()
        reader = ContainerReader(data)
        assert reader.codec == "deflate"
        assert reader.schema == ROW_SCHEMA
        assert reader.read_all() == rows

    def test_empty_container(self):
        data = ContainerWriter(ROW_SCHEMA).getvalue()
        assert decode_rows(data) == []

    def test_deterministic_output(self):
        rows = [(1, 1.0, "a", True)]
        assert encode_rows(ROW_SCHEMA, rows) == encode_rows(ROW_SCHEMA, rows)

    def test_bad_magic(self):
        with pytest.raises(SchemaError):
            ContainerReader(b"NOPE" + b"\x00" * 40)

    def test_schema_check_on_decode(self):
        data = encode_rows(ROW_SCHEMA, [(1, 1.0, None, False)])
        other = Schema.record("other", [("x", Schema.primitive("long"))])
        with pytest.raises(SchemaError):
            decode_rows(data, expected_schema=other)

    def test_corrupt_sync_marker_detected(self):
        data = bytearray(encode_rows(ROW_SCHEMA, [(1, 1.0, "a", True)], codec="null"))
        data[-1] ^= 0xFF  # flip a sync byte
        with pytest.raises(SchemaError):
            decode_rows(bytes(data))

    def test_deflate_shrinks_repetitive_rows(self):
        rows = [(i, 0.0, "same text", True) for i in range(2000)]
        null_size = len(encode_rows(ROW_SCHEMA, rows, codec="null"))
        deflate_size = len(encode_rows(ROW_SCHEMA, rows, codec="deflate"))
        assert deflate_size < null_size / 2

    def test_rows_written_counter(self):
        writer = ContainerWriter(ROW_SCHEMA, block_rows=10)
        writer.extend([(i, 0.0, None, False) for i in range(25)])
        assert writer.rows_written == 25
        assert len(decode_rows(writer.getvalue())) == 25
