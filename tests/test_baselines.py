"""Tests for the §4.7 baselines: JDBC Default Source, HDFS, native COPY."""

import pytest

from repro.baselines import SimHdfsCluster, parallel_copy
from repro.baselines.native_copy import split_csv
from repro.connector import SimVerticaCluster
from repro.sim import Environment
from repro.spark import GreaterThan, SparkSession, StructField, StructType
from repro.spark.errors import AnalysisError

SCHEMA = StructType([StructField("id", "long"), StructField("val", "double")])


@pytest.fixture
def fabric():
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vc.sim_cluster, num_workers=8)
    return vc, spark


@pytest.fixture
def populated(fabric):
    vc, spark = fabric
    session = vc.db.connect()
    session.execute(
        "CREATE TABLE src (id INTEGER, val FLOAT) SEGMENTED BY HASH(id) ALL NODES"
    )
    values = ", ".join(f"({i}, {i * 1.5})" for i in range(200))
    session.execute(f"INSERT INTO src VALUES {values}")
    return vc, spark, session


class TestJdbcLoad:
    def test_single_partition_without_bounds(self, populated):
        vc, spark, __ = populated
        df = spark.read.format("jdbc").options(db=vc, table="src").load()
        assert df.rdd().num_partitions == 1  # zero parallelism by default
        assert len(df.collect()) == 200

    def test_parallel_load_requires_integer_column_bounds(self, populated):
        vc, spark, __ = populated
        with pytest.raises(AnalysisError):
            spark.read.format("jdbc").options(
                db=vc, table="src", partitioncolumn="id", numpartitions=4
            ).load()

    def test_parallel_load_with_bounds(self, populated):
        vc, spark, __ = populated
        df = spark.read.format("jdbc").options(
            db=vc, table="src", partitioncolumn="id",
            lowerbound=0, upperbound=200, numpartitions=8,
        ).load()
        assert df.rdd().num_partitions == 8
        rows = df.collect()
        assert sorted(r[0] for r in rows) == list(range(200))

    def test_value_ranges_cover_data_outside_bounds(self, populated):
        # Spark's first/last partitions are unbounded, so rows outside
        # [lowerbound, upperbound) are still loaded exactly once.
        vc, spark, session = populated
        session.execute("INSERT INTO src VALUES (-50, 0.0), (900, 0.0)")
        df = spark.read.format("jdbc").options(
            db=vc, table="src", partitioncolumn="id",
            lowerbound=0, upperbound=200, numpartitions=4,
        ).load()
        ids = sorted(r[0] for r in df.collect())
        assert ids[0] == -50 and ids[-1] == 900
        assert len(ids) == 202

    def test_filter_pushdown_supported(self, populated):
        vc, spark, __ = populated
        df = spark.read.format("jdbc").options(
            db=vc, table="src", partitioncolumn="id",
            lowerbound=0, upperbound=200, numpartitions=4,
        ).load().filter(GreaterThan("ID", 194))
        assert sorted(r[0] for r in df.collect()) == [195, 196, 197, 198, 199]

    def test_all_queries_go_through_single_host(self, populated):
        vc, spark, __ = populated
        spark.read.format("jdbc").options(
            db=vc, table="src", partitioncolumn="id",
            lowerbound=0, upperbound=200, numpartitions=8,
        ).load().collect()
        model = vc.cost_model
        external_tx = {
            name: node.nics[model.external_nic].tx.bytes_total
            for name, node in vc.sim_nodes.items()
        }
        senders = [name for name, nbytes in external_tx.items() if nbytes > 0]
        assert senders == [vc.node_names[0]]

    def test_jdbc_load_shuffles_internally(self, populated):
        """Value-range queries touch all nodes: intra-Vertica traffic > 0,
        unlike the connector's hash-range queries."""
        vc, spark, __ = populated
        spark.read.format("jdbc").options(
            db=vc, table="src", partitioncolumn="id",
            lowerbound=0, upperbound=200, numpartitions=8,
        ).load().collect()
        assert vc.internal_bytes() > 0

    def test_no_snapshot_consistency(self, populated):
        """JDBC tasks see whatever is committed when they run — a
        mid-job write tears the loaded view (V2S's epoch pinning fixes
        exactly this)."""
        vc, spark, session = populated
        df = spark.read.format("jdbc").options(
            db=vc, table="src", partitioncolumn="id",
            lowerbound=0, upperbound=200, numpartitions=2,
        ).load()
        rdd = df.rdd()

        results = []

        def task0(ctx):
            rows = yield from rdd.compute(0, ctx)
            results.extend(rows)
            # a writer commits between task 0 and task 1
            writer = vc.db.connect(vc.node_names[1])
            writer.execute("DELETE FROM src WHERE id >= 100")
            writer.close()

        def task1(ctx):
            rows = yield from rdd.compute(1, ctx)
            results.extend(rows)

        def driver():
            yield vc.env.process(task0(_Ctx(spark)))
            yield vc.env.process(task1(_Ctx(spark)))

        class _Ctx:
            def __init__(self, spark):
                self.node = spark.workers[0]
                self.env = spark.env

        vc.env.run(vc.env.process(driver()))
        # Torn read: first half loaded, second half missing.
        assert len(results) == 100


class TestJdbcSave:
    def test_save_via_inserts(self, fabric):
        vc, spark = fabric
        df = spark.create_dataframe(
            [(i, float(i)) for i in range(100)], SCHEMA, num_partitions=4
        )
        df.write.format("jdbc").options(db=vc, table="out").mode("overwrite").save()
        session = vc.db.connect()
        assert session.scalar("SELECT COUNT(*) FROM out") == 100

    def test_append(self, fabric):
        vc, spark = fabric
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        df.write.format("jdbc").options(db=vc, table="out").mode("overwrite").save()
        df.write.format("jdbc").options(db=vc, table="out").mode("append").save()
        session = vc.db.connect()
        assert session.scalar("SELECT COUNT(*) FROM out") == 2

    def test_task_retry_duplicates_rows(self, fabric):
        """The §4.7.1 hazard the connector fixes: a task that fails after
        inserting and is retried loads its batch twice."""
        from repro.spark.faults import ProbeFailurePolicy

        env = Environment()
        vc = SimVerticaCluster(env=env, num_nodes=4)
        policy = ProbeFailurePolicy({(0, 0): "jdbc:after_first_batch"})

        class AfterBatchPolicy(ProbeFailurePolicy):
            def __init__(self):
                super().__init__({})
                self.batches = 0

            def on_probe(self, ctx, label):
                if label == "jdbc:before_insert_batch":
                    self.batches += 1
                    if self.batches == 2 and ctx.attempt_number == 0:
                        from repro.spark.faults import InjectedFailure

                        raise InjectedFailure("dies after first batch committed")

        policy = AfterBatchPolicy()
        spark = SparkSession(
            env=env, cluster=vc.sim_cluster, num_workers=2, fault_policy=policy
        )
        rows = [(i, float(i)) for i in range(32)]
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=1)
        df.write.format("jdbc").options(
            db=vc, table="dup", batchsize=16
        ).mode("overwrite").save()
        session = vc.db.connect()
        count = session.scalar("SELECT COUNT(*) FROM dup")
        assert count > 32  # duplicated rows: not exactly-once


class TestHdfsBaseline:
    def make_hdfs(self, fabric, block_size=4096):
        vc, spark = fabric
        hdfs = SimHdfsCluster(
            vc.env, vc.sim_cluster, num_nodes=4, block_size=block_size
        )
        return vc, spark, hdfs

    def test_write_read_round_trip(self, fabric):
        vc, spark, hdfs = self.make_hdfs(fabric)
        rows = [(i, float(i) / 7) for i in range(500)]
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=4)
        df.write.format("hdfs").options(fs=hdfs, path="/data/d1").save()
        back = spark.read.format("hdfs").options(fs=hdfs, path="/data/d1").load()
        assert sorted(back.collect()) == sorted(rows)
        assert back.schema.names == ["id", "val"]

    def test_one_partition_per_block(self, fabric):
        vc, spark, hdfs = self.make_hdfs(fabric, block_size=512)
        rows = [(i, float(i)) for i in range(2000)]
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=2)
        df.write.format("hdfs").options(fs=hdfs, path="/blocks").save()
        back = spark.read.format("hdfs").options(fs=hdfs, path="/blocks").load()
        total_blocks = sum(
            hdfs.fs.total_blocks(p) for p in hdfs.fs.list("/blocks/part-")
        )
        assert back.rdd().num_partitions == total_blocks
        assert total_blocks > 2
        assert sorted(back.collect()) == sorted(rows)

    def test_replication_on_write(self, fabric):
        vc, spark, hdfs = self.make_hdfs(fabric)
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        df.write.format("hdfs").options(fs=hdfs, path="/rep").save()
        block = hdfs.fs.block_locations("/rep/part-00000")[0]
        assert len(block.replicas) == 3

    def test_overwrite_mode(self, fabric):
        vc, spark, hdfs = self.make_hdfs(fabric)
        df1 = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        df2 = spark.create_dataframe([(2, 2.0), (3, 3.0)], SCHEMA, num_partitions=1)
        df1.write.format("hdfs").options(fs=hdfs, path="/ow").save()
        df2.write.format("hdfs").options(fs=hdfs, path="/ow").mode("overwrite").save()
        back = spark.read.format("hdfs").options(fs=hdfs, path="/ow").load()
        assert sorted(back.collect()) == [(2, 2.0), (3, 3.0)]

    def test_missing_path(self, fabric):
        vc, spark, hdfs = self.make_hdfs(fabric)
        with pytest.raises(AnalysisError):
            spark.read.format("hdfs").options(fs=hdfs, path="/nope").load()


class TestNativeCopy:
    def test_split_csv(self):
        text = "".join(f"{i},x\n" for i in range(10))
        parts = split_csv(text, 3)
        assert len(parts) == 3
        assert "".join(parts) == text

    def test_parallel_copy_loads_table(self, fabric):
        vc, __ = fabric
        session = vc.db.connect()
        session.execute(
            "CREATE TABLE bulk (id INTEGER, val FLOAT) SEGMENTED BY HASH(id) ALL NODES"
        )
        csv = "".join(f"{i},{i * 0.5}\n" for i in range(400))
        elapsed = parallel_copy(vc, "bulk", split_csv(csv, 8))
        assert session.scalar("SELECT COUNT(*) FROM bulk") == 400
        assert elapsed >= 0.0

    def test_copy_time_scales_with_splits(self):
        """More parallel splits amortise the disk read (§4.7.3's sweep)."""
        times = {}
        for parts in (1, 8):
            env = Environment()
            vc = SimVerticaCluster(env=env, num_nodes=4)
            session = vc.db.connect()
            session.execute(
                "CREATE TABLE bulk (id INTEGER, val FLOAT) "
                "SEGMENTED BY HASH(id) ALL NODES"
            )
            csv = "".join(f"{i},{i * 0.5}\n" for i in range(100))
            times[parts] = parallel_copy(
                vc, "bulk", split_csv(csv, parts), scale_factor=1e6
            )
        assert times[8] < times[1]
