"""Tests for the resumable experiment-grid harness.

The contract under test is the ISSUE's: an interrupted sweep *resumes*
instead of restarting (completed cells skipped, mid-flight statuses
reconciled, merged results identical to an uninterrupted run), artifacts
are schema-versioned and fingerprinted, the CI gate trips on an injected
regression while passing on an identical baseline, and the results store
round-trips through the repro's own Vertica tables via S2V/V2S.
"""

import copy
import json
import os

import pytest

from repro.bench.grid import (
    AREAS,
    DONE,
    FAILED,
    PENDING,
    BenchArea,
    GridError,
    GridRunner,
    ParameterGrid,
    ResultsStore,
    build_area_report,
    compare_artifacts,
    cost_model_fingerprint,
    publish_results,
    read_results,
    run_area,
)
from repro.bench.report import REPORT_SCHEMA_VERSION


def tiny_grid(area="tiny"):
    return ParameterGrid(area, {"direction": ("v2s", "s2v"),
                                "partitions": (2, 4, 8)})


def deterministic_runner(params):
    """sim seconds derived from the cell's own parameters."""
    base = 100.0 if params["direction"] == "v2s" else 80.0
    return {"sim_seconds": base / params["partitions"],
            "rows_per_sec": 1000 * params["partitions"]}


class CountingRunner:
    """Wraps a runner; optionally dies (as if killed) at one cell index."""

    def __init__(self, runner, die_at=None):
        self.runner = runner
        self.die_at = die_at
        self.calls = []

    def __call__(self, params):
        if self.die_at is not None and len(self.calls) == self.die_at:
            raise KeyboardInterrupt
        self.calls.append(dict(params))
        return self.runner(params)


def quiet(_msg):
    pass


class TestParameterGrid:
    def test_cells_are_the_ordered_cross_product(self):
        grid = tiny_grid()
        assert len(grid) == 6
        cells = grid.cells()
        assert cells[0] == {"direction": "v2s", "partitions": 2}
        assert cells[-1] == {"direction": "s2v", "partitions": 8}
        assert grid.cell_id(cells[0]) == "direction=v2s,partitions=2"

    def test_fingerprint_tracks_axes(self):
        assert tiny_grid().fingerprint() == tiny_grid().fingerprint()
        other = ParameterGrid("tiny", {"direction": ("v2s",),
                                       "partitions": (2, 4, 8)})
        assert other.fingerprint() != tiny_grid().fingerprint()

    def test_empty_axes_rejected(self):
        with pytest.raises(GridError):
            ParameterGrid("bad", {})
        with pytest.raises(GridError):
            ParameterGrid("bad", {"partitions": ()})


class TestResume:
    def test_interrupted_sweep_resumes_and_matches_uninterrupted(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        # Kill the sweep after two completed cells (the third dies
        # mid-flight, leaving a begin event with no done/fail).
        killed = CountingRunner(deterministic_runner, die_at=2)
        with pytest.raises(KeyboardInterrupt):
            GridRunner(tiny_grid(), killed, ResultsStore(journal, tiny_grid()),
                       log=quiet).run()
        assert len(killed.calls) == 2

        # Reloading the journal reconciles the mid-flight cell to PENDING
        # (attempt recorded), keeps the two DONE cells.
        store = ResultsStore(journal, tiny_grid())
        assert store.reconciled == ["direction=v2s,partitions=8"]
        counts = store.counts()
        assert counts[DONE] == 2 and counts[PENDING] == 4
        assert store.record("direction=v2s,partitions=8")["attempts"] == 1

        # The resumed run executes only the four unfinished cells.
        resumed = CountingRunner(deterministic_runner)
        summary = GridRunner(tiny_grid(), resumed, store, log=quiet).run()
        assert summary == {"run": 4, "skipped": 2, "failed": 0,
                           "reconciled": 1}
        assert [c["partitions"] for c in resumed.calls] == [8, 2, 4, 8]

        # Merged results are identical to a never-interrupted sweep.
        clean_store = ResultsStore(str(tmp_path / "clean.jsonl"), tiny_grid())
        GridRunner(tiny_grid(), CountingRunner(deterministic_runner),
                   clean_store, log=quiet).run()

        def comparable(records):
            return [(r["cell_id"], r["status"], r["sim_seconds"], r["metrics"])
                    for r in records]

        assert comparable(store.records()) == comparable(clean_store.records())
        # The reconciled cell carries its extra (wasted) attempt.
        assert store.record("direction=v2s,partitions=8")["attempts"] == 2

    def test_second_run_skips_everything(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        GridRunner(tiny_grid(), CountingRunner(deterministic_runner),
                   ResultsStore(journal, tiny_grid()), log=quiet).run()
        rerun = CountingRunner(deterministic_runner)
        summary = GridRunner(tiny_grid(), rerun,
                             ResultsStore(journal, tiny_grid()),
                             log=quiet).run()
        assert summary["run"] == 0 and summary["skipped"] == 6
        assert rerun.calls == []

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")

        def flaky(params):
            if params["partitions"] == 4:
                raise RuntimeError("boom")
            return deterministic_runner(params)

        store = ResultsStore(journal, tiny_grid())
        summary = GridRunner(tiny_grid(), flaky, store, log=quiet).run()
        assert summary["failed"] == 2
        failed = store.record("direction=v2s,partitions=4")
        assert failed["status"] == FAILED
        assert "boom" in failed["error"]

        retry = CountingRunner(deterministic_runner)
        store = ResultsStore(journal, tiny_grid())
        summary = GridRunner(tiny_grid(), retry, store, log=quiet).run()
        assert summary == {"run": 2, "skipped": 4, "failed": 0,
                           "reconciled": 0}
        assert store.counts()[DONE] == 6
        assert store.record("direction=v2s,partitions=4")["attempts"] == 2

    def test_journal_from_a_different_grid_is_refused(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        GridRunner(tiny_grid(), deterministic_runner,
                   ResultsStore(journal, tiny_grid()), log=quiet).run()
        other = ParameterGrid("tiny", {"direction": ("v2s",),
                                       "partitions": (2,)})
        with pytest.raises(GridError, match="--fresh"):
            ResultsStore(journal, other)

    def test_no_resume_discards_the_journal(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        GridRunner(tiny_grid(), deterministic_runner,
                   ResultsStore(journal, tiny_grid()), log=quiet).run()
        rerun = CountingRunner(deterministic_runner)
        summary = GridRunner(tiny_grid(), rerun,
                             ResultsStore(journal, tiny_grid()),
                             log=quiet).run(resume=False)
        assert summary["run"] == 6 and summary["skipped"] == 0


def tiny_area():
    return BenchArea(
        "tiny", "synthetic area for gate tests",
        axes={"direction": ("v2s", "s2v"), "partitions": (2, 4, 8)},
        smoke_axes={"direction": ("v2s", "s2v"), "partitions": (2, 4, 8)},
        runner=lambda params, config: deterministic_runner(params),
        gate={"sim_tolerance": 0.2, "floors": {"rows_per_sec": 1500}},
    )


def tiny_artifact(tmp_path, name="a"):
    area = tiny_area()
    grid = area.grid()
    store = ResultsStore(str(tmp_path / f"{name}.jsonl"), grid)
    GridRunner(grid, area.run_cell, store, log=quiet).run()
    return build_area_report(area, store, smoke=True).to_json()


class TestArtifact:
    def test_schema_and_fingerprints(self, tmp_path):
        doc = tiny_artifact(tmp_path)
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert doc["area"] == "tiny"
        assert doc["grid"]["fingerprint"] == tiny_area().grid().fingerprint()
        assert doc["cost_model_fingerprint"] == cost_model_fingerprint()
        assert doc["gate"] == {"sim_tolerance": 0.2,
                               "floors": {"rows_per_sec": 1500}}
        assert len(doc["cells"]) == 6
        cell = doc["cells"][0]
        assert cell["status"] == DONE
        assert cell["sim_seconds"] == 50.0
        assert cell["wall_seconds"] is not None
        assert cell["metrics"] == {"rows_per_sec": 2000}
        assert doc["wall_seconds"] is not None
        assert doc["sim_seconds"] > 0


class TestGate:
    def test_identical_artifacts_pass(self, tmp_path):
        doc = tiny_artifact(tmp_path)
        assert compare_artifacts(copy.deepcopy(doc), doc) == []

    def test_injected_regression_trips_the_gate(self, tmp_path):
        baseline = tiny_artifact(tmp_path)
        fresh = copy.deepcopy(baseline)
        # >20% slower than baseline on one cell: outside the band.
        fresh["cells"][2]["sim_seconds"] = \
            baseline["cells"][2]["sim_seconds"] * 1.25
        failures = compare_artifacts(fresh, baseline)
        assert len(failures) == 1
        assert "regressed" in failures[0]
        # ...while a within-band wobble passes.
        fresh["cells"][2]["sim_seconds"] = \
            baseline["cells"][2]["sim_seconds"] * 1.15
        assert compare_artifacts(fresh, baseline) == []

    def test_floor_violation_trips_the_gate(self, tmp_path):
        baseline = tiny_artifact(tmp_path)
        fresh = copy.deepcopy(baseline)
        fresh["cells"][0]["metrics"]["rows_per_sec"] = 100
        failures = compare_artifacts(fresh, baseline)
        assert len(failures) == 1 and "under the floor" in failures[0]

    def test_unfinished_or_missing_cells_fail(self, tmp_path):
        baseline = tiny_artifact(tmp_path)
        fresh = copy.deepcopy(baseline)
        fresh["cells"][1]["status"] = FAILED
        fresh["cells"][1]["error"] = "RuntimeError('boom')"
        del fresh["cells"][0]
        failures = compare_artifacts(fresh, baseline)
        assert any("missing" in f for f in failures)
        assert any("not DONE" in f for f in failures)

    def test_fingerprint_mismatches_fail_fast(self, tmp_path):
        baseline = tiny_artifact(tmp_path)
        stale = copy.deepcopy(baseline)
        stale["grid"]["fingerprint"] = "deadbeef"
        assert any("fingerprint" in f
                   for f in compare_artifacts(baseline, stale))
        recal = copy.deepcopy(baseline)
        recal["cost_model_fingerprint"] = "deadbeef"
        assert any("cost-model" in f
                   for f in compare_artifacts(baseline, recal))
        bumped = copy.deepcopy(baseline)
        bumped["schema_version"] = REPORT_SCHEMA_VERSION + 1
        assert any("schema_version" in f
                   for f in compare_artifacts(bumped, baseline))

    def test_failed_check_in_fresh_artifact_fails(self, tmp_path):
        baseline = tiny_artifact(tmp_path)
        fresh = copy.deepcopy(baseline)
        fresh["checks"] = [{"description": "shape holds", "passed": False}]
        assert any("shape holds" in f
                   for f in compare_artifacts(fresh, baseline))


class TestVerticaDogfood:
    def test_results_round_trip_through_s2v_and_v2s(self, tmp_path):
        area = tiny_area()
        grid = area.grid()

        def flaky(params):
            if params == {"direction": "s2v", "partitions": 8}:
                raise RuntimeError("boom")
            return deterministic_runner(params)

        store = ResultsStore(str(tmp_path / "grid.jsonl"), grid)
        GridRunner(grid, flaky, store, log=quiet).run()
        fabric, written = publish_results([store])
        assert written == 6
        rows = read_results(fabric)
        assert len(rows) == 6
        by_cell = {row[1]: row for row in rows}
        assert by_cell["direction=s2v,partitions=8"][2] == FAILED
        assert by_cell["direction=v2s,partitions=2"][2] == DONE
        assert by_cell["direction=v2s,partitions=2"][4] == 50.0

    def test_publish_appends_across_runs(self, tmp_path):
        area = tiny_area()
        grid = area.grid()
        store = ResultsStore(str(tmp_path / "grid.jsonl"), grid)
        GridRunner(grid, area.run_cell, store, log=quiet).run()
        fabric, first = publish_results([store])
        __, second = publish_results([store], fabric=fabric)
        assert first == second == 6
        assert len(read_results(fabric)) == 12


class TestRealAreas:
    def test_fig06_smoke_area_runs_and_resumes(self, tmp_path):
        store, report = run_area(AREAS["fig06"], str(tmp_path), log=quiet)
        assert store.counts()[DONE] == 6
        assert report.all_checks_pass, report.failed_checks()
        path = os.path.join(str(tmp_path), "BENCH_fig06.json")
        assert os.path.exists(path)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert doc["cost_model_fingerprint"] == cost_model_fingerprint()
        # A second invocation resumes: every cell skipped, same artifact.
        store2, __ = run_area(AREAS["fig06"], str(tmp_path), log=quiet)
        assert store2.counts()[DONE] == 6
        assert store2.records() == store.records()
