"""Tests for the benchmark harness itself (reports, fabric, datasets)."""

import os

import pytest

from repro.bench import ExperimentReport, Fabric
from repro.connector.costmodel import NULL_COST_MODEL
from repro.workloads import make_d1, make_d1_reshaped, make_d1_with_int_column, make_d2
from repro.workloads.datasets import Dataset


class TestExperimentReport:
    def test_render_aligns_columns(self):
        report = ExperimentReport("x1", "demo")
        report.set_columns(["case", "paper", "measured"])
        report.add("short", 1.0, 123456.0)
        report.add("a much longer label", None, 0.5)
        text = report.render()
        lines = text.splitlines()
        assert lines[0] == "== x1: demo =="
        assert "case" in lines[1]
        assert "-" in lines[2]
        assert "123456" in text
        assert "-" in lines[4]  # None renders as dash

    def test_checks_recorded_and_rendered(self):
        report = ExperimentReport("x2", "demo")
        report.check("always true", True)
        report.check("always false", False)
        assert not report.all_checks_pass
        assert report.failed_checks() == ["always false"]
        text = report.render()
        assert "[PASS] always true" in text
        assert "[FAIL] always false" in text

    def test_save_writes_file(self, tmp_path):
        report = ExperimentReport("x3", "demo")
        report.add("row", 1, 2)
        path = report.save(str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert "x3" in handle.read()

    def test_notes_rendered(self):
        report = ExperimentReport("x4", "demo")
        report.note("context matters")
        assert "note: context matters" in report.render()


class TestDatasets:
    def test_d1_shape(self):
        d1 = make_d1(real_rows=50)
        assert d1.real_rows == 50
        assert len(d1.schema) == 100
        assert d1.virtual_rows == 100_000_000
        assert d1.scale == pytest.approx(2_000_000)
        assert all(len(r) == 100 for r in d1.rows)
        assert all(0.0 <= v < 1.0 for v in d1.rows[0])

    def test_d1_deterministic(self):
        assert make_d1(real_rows=10).rows == make_d1(real_rows=10).rows

    def test_d1_csv_bytes_near_paper(self):
        # The paper's D1 is 1400 CSV bytes per row; ours should be close.
        d1 = make_d1(real_rows=100)
        assert 1200 <= d1.csv_bytes_per_row() <= 1500

    def test_d2_shape(self):
        d2 = make_d2(real_rows=100)
        assert len(d2.schema) == 2
        assert d2.virtual_rows == 1_460_000_000
        # ~96 CSV bytes per row, like 140 GB / 1.46B rows
        assert 80 <= d2.csv_bytes_per_row() <= 115

    def test_reshaped_d1(self):
        tall = make_d1_reshaped(real_rows=40)
        assert len(tall.schema) == 1
        assert tall.virtual_rows == 10_000_000_000

    def test_d1_with_int_column(self):
        dataset = make_d1_with_int_column(real_rows=60)
        assert dataset.schema.fields[0].name == "ikey"
        assert all(0 <= r[0] < 100 for r in dataset.rows)

    def test_with_virtual_rows(self):
        d1 = make_d1(real_rows=10).with_virtual_rows(1_000)
        assert d1.virtual_rows == 1_000
        assert d1.scale == 100.0

    def test_validation(self):
        from repro.spark.row import StructField, StructType

        schema = StructType([StructField("a", "long")])
        with pytest.raises(ValueError):
            Dataset("x", schema, [], 10)
        with pytest.raises(ValueError):
            Dataset("x", schema, [(1,), (2,)], 1)


class TestFabric:
    def test_fabric_wires_one_clock(self):
        fabric = Fabric(num_vertica=2, num_spark=2, cost_model=NULL_COST_MODEL)
        assert fabric.spark.env is fabric.vertica.env is fabric.env
        assert fabric.hdfs is None

    def test_fabric_round_trip_with_null_costs(self):
        fabric = Fabric(num_vertica=2, num_spark=2, cost_model=NULL_COST_MODEL)
        dataset = make_d1(real_rows=30, num_cols=3)
        elapsed = fabric.s2v_save(dataset, "t", 4)
        assert elapsed >= 0
        load_elapsed, count = fabric.v2s_load("t", 4, 1.0)
        assert count == 30

    def test_populate_then_load(self):
        fabric = Fabric(num_vertica=2, num_spark=2, cost_model=NULL_COST_MODEL)
        dataset = make_d1(real_rows=25, num_cols=2)
        fabric.populate(dataset, "d")
        __, count = fabric.v2s_load("d", 4, 1.0)
        assert count == 25

    def test_hdfs_fabric(self):
        fabric = Fabric(num_vertica=2, num_spark=2, with_hdfs=True,
                        cost_model=NULL_COST_MODEL, hdfs_block_size=4096)
        dataset = make_d1(real_rows=20, num_cols=2)
        fabric.hdfs_write(dataset, "/x", 2)
        __, count = fabric.hdfs_read("/x", 1.0)
        assert count == 20
