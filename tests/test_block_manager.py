"""Tier-1 tests for the executor columnar cache (repro.cache.blocks).

ColumnBlock stores a computed partition column-major when the rows are
uniform tuples (Shark-style in-memory columnar storage); BlockManager
bounds each executor's resident blocks with byte-accounted LRU.  The
scheduler integration under test: cached partitions survive across
jobs, an executor crash drops its blocks and lineage recomputes only
what was lost, and DataFrame.cache()/unpersist() ride the same store.
"""

import pytest

from repro import telemetry
from repro.cache.blocks import (
    BlockManager,
    ColumnBlock,
    cluster_partitions,
    rows_nbytes,
)
from repro.spark import SparkSession, StructField, StructType
from repro.telemetry import MetricsRegistry


@pytest.fixture
def registry():
    reg = telemetry.install(MetricsRegistry(enabled=True))
    yield reg
    telemetry.reset()


@pytest.fixture
def spark():
    return SparkSession(num_workers=2, cores_per_worker=2)


class TestColumnBlock:
    def test_uniform_tuples_stored_columnar(self):
        rows = [(1, "a", 2.0), (2, "b", 3.0), (3, "c", 4.0)]
        block = ColumnBlock(rows)
        assert block.is_columnar
        assert block.rows() == rows

    def test_rows_returns_a_fresh_list(self):
        rows = [(1,), (2,)]
        block = ColumnBlock(rows)
        out = block.rows()
        out.append((99,))
        assert block.rows() == rows

    def test_ragged_rows_fall_back_to_row_store(self):
        rows = [(1, 2), (3,), "scalar"]
        block = ColumnBlock(rows)
        assert not block.is_columnar
        assert block.rows() == rows

    def test_nbytes_tracks_payload(self):
        small = ColumnBlock([(1,)])
        large = ColumnBlock([(i, "x" * 50) for i in range(100)])
        assert 0 < small.nbytes < large.nbytes
        assert large.nbytes >= rows_nbytes([(i, "x" * 50) for i in range(100)])


class TestBlockManager:
    def test_put_get_roundtrip(self):
        manager = BlockManager("exec-0", budget_bytes=1 << 20)
        rows = [(i, float(i)) for i in range(10)]
        assert manager.put((7, 0), rows) is True
        block = manager.get((7, 0))
        assert block is not None and block.rows() == rows
        assert manager.get((7, 1)) is None

    def test_lru_eviction_under_byte_budget(self):
        rows = [(i, "x" * 20) for i in range(20)]
        one = ColumnBlock(rows).nbytes
        manager = BlockManager("exec-0", budget_bytes=int(one * 2.5))
        for part in range(4):
            assert manager.put((1, part), rows) is True
        assert len(manager) == 2
        assert manager.used_bytes <= manager.budget_bytes
        # Oldest partitions were evicted, newest survive.
        assert manager.get((1, 0)) is None
        assert manager.get((1, 3)) is not None

    def test_oversized_block_rejected(self):
        manager = BlockManager("exec-0", budget_bytes=8)
        assert manager.put((1, 0), [(i, "x" * 100) for i in range(50)]) is False
        assert len(manager) == 0

    def test_drop_rdd_releases_only_that_rdd(self):
        manager = BlockManager("exec-0", budget_bytes=1 << 20)
        manager.put((1, 0), [(1,)])
        manager.put((1, 1), [(2,)])
        manager.put((2, 0), [(3,)])
        assert manager.drop_rdd(1) == 2
        assert manager.partitions_of(1) == []
        assert manager.partitions_of(2) == [0]
        manager.drop_all()
        assert manager.used_bytes == 0

    def test_cluster_partitions_counts_replicas(self):
        a = BlockManager("exec-0", budget_bytes=1 << 20)
        b = BlockManager("exec-1", budget_bytes=1 << 20)
        a.put((5, 0), [(1,)])
        b.put((5, 0), [(1,)])
        b.put((5, 1), [(2,)])
        located = cluster_partitions([a, b], 5)
        assert located == {0: 2, 1: 1}


class TestSchedulerIntegration:
    def test_blocks_live_in_executor_managers(self, spark):
        rdd = spark.parallelize(range(8), 4).cache()
        rdd.collect()
        managers = [e.block_manager for e in spark.scheduler.executors]
        held = sum(len(m.partitions_of(rdd.rdd_id)) for m in managers)
        assert held == 4
        assert rdd.cached_bytes > 0

    def test_crash_drops_blocks_and_lineage_recomputes(self, spark):
        calls = []

        def traced(x):
            calls.append(x)
            return x * 2

        rdd = spark.parallelize(range(10), 2).map(traced).cache()
        expected = [x * 2 for x in range(10)]
        assert rdd.collect() == expected
        assert len(calls) == 10
        victim = spark.scheduler.executors[0]
        lost = len(victim.block_manager.partitions_of(rdd.rdd_id))
        spark.scheduler.crash_executor(victim)
        assert len(victim.block_manager) == 0
        spark.scheduler.restart_executor(victim)
        assert rdd.collect() == expected
        # Only the lost partitions recompute; survivors serve from cache.
        assert len(calls) == 10 + lost * 5

    def test_unpersist_releases_bytes(self, spark):
        rdd = spark.parallelize(range(16), 4).cache()
        rdd.collect()
        assert rdd.cached_partitions == 4
        assert rdd.cached_bytes > 0
        rdd.unpersist()
        assert rdd.cached_partitions == 0
        assert rdd.cached_bytes == 0
        for executor in spark.scheduler.executors:
            assert executor.block_manager.partitions_of(rdd.rdd_id) == []

    def test_cache_telemetry_counters(self, spark, registry):
        rdd = spark.parallelize(range(8), 4).cache()
        rdd.collect()
        rdd.collect()
        counters = registry.snapshot().counters
        assert counters.get("spark.cache.stores", 0) == 4
        served = counters.get("spark.cache.hits", 0) + counters.get(
            "spark.cache.remote_hits", 0
        )
        assert served == 4


class TestDataFrameCache:
    SCHEMA = StructType(
        [StructField("id", "long"), StructField("score", "double")]
    )
    ROWS = [(i, float(i) / 2) for i in range(12)]

    def test_dataframe_cache_roundtrip(self, spark):
        df = spark.create_dataframe(self.ROWS, self.SCHEMA, num_partitions=3)
        cached = df.cache()
        assert cached.collect() == self.ROWS
        assert cached.collect() == self.ROWS
        assert cached.rdd().cached_partitions == 3

    def test_dataframe_unpersist_releases(self, spark):
        cached = spark.create_dataframe(
            self.ROWS, self.SCHEMA, num_partitions=3
        ).cache()
        cached.collect()
        rdd = cached.rdd()
        assert rdd.cached_bytes > 0
        cached.unpersist()
        assert rdd.cached_bytes == 0

    def test_unpersist_on_uncached_frame_is_a_noop(self, spark):
        df = spark.create_dataframe(self.ROWS, self.SCHEMA, num_partitions=2)
        assert df.unpersist().collect() == self.ROWS

    def test_downstream_ops_read_the_cache(self, spark):
        cached = spark.create_dataframe(
            self.ROWS, self.SCHEMA, num_partitions=3
        ).cache()
        cached.collect()
        total = cached.select("id").collect()
        assert [row[0] for row in total] == [row[0] for row in self.ROWS]
