"""Chaos subsystem tests: schedules, controller, invariants, bugfix sweep."""

import pytest

from repro import telemetry
from repro.bench.chaos_soak import SOAK_COST_MODEL, TrialResult
from repro.bench.fabric import Fabric
from repro.chaos import (
    ChaosError,
    ChaosSchedule,
    ExecutorCrash,
    InvariantChecker,
    LinkDegrade,
    LockStorm,
    ProbeRule,
    StatementRule,
    VerticaRestart,
)
from repro.connector import SimVerticaCluster
from repro.connector.jobs import temp_tables_of
from repro.connector.s2v import FINAL_STATUS_TABLE, S2VWriter
from repro.sim import Environment
from repro.sim.network import Link, Network
from repro.spark import SparkSession
from repro.spark.errors import JobFailedError
from repro.spark.faults import ProbeFailurePolicy
from repro.spark.row import StructField, StructType
from repro.spark.scheduler import ExecutorLost
from repro.vertica.errors import (
    LockContention,
    RetriesExhausted,
    SqlError,
)
from repro.vertica.txn import ABORTED

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])
ROWS = [(i, float(i)) for i in range(120)]


def chaos_fabric(speculation=False):
    return Fabric(
        num_vertica=3,
        num_spark=4,
        cost_model=SOAK_COST_MODEL,
        speculation=speculation,
        telemetry=True,
        failover_connect=True,
    )


def save_under_chaos(fabric, schedule, mode="overwrite", prior=()):
    checker = InvariantChecker(fabric.vertica)
    if prior:
        session = fabric.vertica.db.connect()
        session.execute("CREATE TABLE tgt (id INTEGER, v FLOAT)")
        values = ", ".join(f"({i}, {v})" for i, v in prior)
        session.execute(f"INSERT INTO tgt VALUES {values}")
        session.close()
    controller = fabric.attach_chaos(schedule)
    df = fabric.spark.create_dataframe(ROWS, SCHEMA, num_partitions=4)
    writer = S2VWriter(
        fabric.spark, mode,
        {"db": fabric.vertica, "table": "tgt", "numpartitions": 4,
         "scale_factor": 40.0},
        df,
    )
    raised = None
    try:
        writer.save()
    except Exception as exc:  # noqa: BLE001 - audited below
        raised = exc
    fabric.env.run()
    report = checker.check_s2v_save(
        writer.job_name, "tgt", ROWS, mode=mode,
        prior_rows=list(prior), raised=raised,
    )
    return writer, raised, report, controller


class TestScheduleValidation:
    def test_degrade_factor_and_duration_validated(self):
        with pytest.raises(ChaosError):
            LinkDegrade("l", 1.0, factor=1.0, duration=1.0)
        with pytest.raises(ChaosError):
            LinkDegrade("l", 1.0, factor=0.5, duration=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ChaosError):
            ExecutorCrash("spark0", -1.0)

    def test_restart_and_downtime_validated(self):
        with pytest.raises(ChaosError):
            ExecutorCrash("spark0", 1.0, restart_after=0.0)
        with pytest.raises(ChaosError):
            VerticaRestart("node0001", 1.0, downtime=-1.0)

    def test_statement_rule_point_validated(self):
        with pytest.raises(ChaosError):
            StatementRule("COPY", point="during")

    def test_probe_rule_rate_validated(self):
        with pytest.raises(ChaosError):
            ProbeRule(rate=1.5)

    def test_random_schedule_is_seed_deterministic(self):
        kwargs = dict(
            spark_nodes=["spark0", "spark1"],
            vertica_nodes=["node0001", "node0002"],
            link_names=["a.tx", "b.rx"],
            horizon=5.0,
            events=6,
        )
        first = ChaosSchedule.random(42, **kwargs)
        second = ChaosSchedule.random(42, **kwargs)
        other = ChaosSchedule.random(43, **kwargs)
        assert first.describe() == second.describe()
        assert first.describe() != other.describe()

    def test_actions_sorted_by_time(self):
        schedule = ChaosSchedule(0, [
            ExecutorCrash("b", 2.0), ExecutorCrash("a", 1.0),
        ])
        assert [a.at for a in schedule.actions] == [1.0, 2.0]


class TestExecutorCrash:
    def test_crash_mid_save_relaunches_and_commits_exactly_once(self):
        fabric = chaos_fabric()
        node = fabric.spark.workers[0].name
        schedule = ChaosSchedule(7, actions=[
            ExecutorCrash(node, at=1.5, restart_after=1.0),
        ])
        writer, raised, report, controller = save_under_chaos(fabric, schedule)
        assert raised is None
        assert report.ok, report.describe()
        assert controller.summary().get("executor_crash") == 1

    def test_executor_loss_does_not_consume_failure_budget(self):
        env = Environment()
        spark = SparkSession(env=env, num_workers=2, max_failures=1)
        executor = spark.scheduler.executors[0]

        def thunk(ctx):
            yield env.timeout(1.0)
            return ctx.partition_id

        def crash():
            yield env.timeout(0.5)
            spark.scheduler.crash_executor(executor)

        env.process(crash())
        # With max_failures=1 a counted failure would cancel the job, so
        # completion proves ExecutorLost relaunches are free.
        results = spark.scheduler.run([thunk, thunk, thunk], name="crashy")
        assert sorted(results) == [0, 1, 2]
        assert all(task.failures == 0
                   for job in spark.scheduler.jobs for task in job.tasks)

    def test_down_executor_excluded_from_placement(self):
        env = Environment()
        spark = SparkSession(env=env, num_workers=3)
        down = spark.scheduler.executors[1]
        spark.scheduler.crash_executor(down)
        for __ in range(12):
            assert spark.scheduler._next_executor() is not down
        spark.scheduler.restart_executor(down)
        chosen = {spark.scheduler._next_executor() for __ in range(12)}
        assert down in chosen


class TestConnectionSever:
    def test_severed_copy_retries_to_exactly_once(self):
        fabric = chaos_fabric()
        schedule = ChaosSchedule(11, statement_rules=[
            StatementRule("COPY", rate=1.0, point="before", max_severs=2),
        ])
        writer, raised, report, controller = save_under_chaos(fabric, schedule)
        assert raised is None
        assert report.ok, report.describe()
        assert controller.summary().get("connection_sever") == 2

    def test_commit_ack_ambiguity_stays_exactly_once(self):
        # Sever *after* the server executed a COMMIT: the client cannot
        # know the outcome, yet the staged data must land exactly once.
        fabric = chaos_fabric()
        schedule = ChaosSchedule(13, statement_rules=[
            StatementRule("COMMIT", rate=1.0, point="after", max_severs=2),
        ])
        writer, raised, report, controller = save_under_chaos(fabric, schedule)
        assert raised is None
        assert report.ok, report.describe()
        assert controller.summary().get("connection_sever") == 2

    def test_severed_connection_refuses_reuse(self):
        cluster = SimVerticaCluster(num_nodes=1)
        conn = cluster.connect()
        conn.sever()
        from repro.connector.jdbc import ConnectionSevered

        def driver():
            with pytest.raises(ConnectionSevered):
                yield from conn.execute("SELECT 1 FROM v_catalog.nodes")

        cluster.run(driver())


class TestLockStorm:
    def test_storm_on_status_table_is_survived(self):
        fabric = chaos_fabric()
        schedule = ChaosSchedule(17, actions=[
            LockStorm(FINAL_STATUS_TABLE, at=1.3, duration=1.0),
            LockStorm("TGT", at=1.8, duration=0.8),
        ])
        writer, raised, report, controller = save_under_chaos(
            fabric, schedule, mode="append", prior=[(900, 9.0)],
        )
        assert raised is None
        assert report.ok, report.describe()
        assert controller.summary().get("lock_storm") == 2


class TestVerticaRestart:
    def test_restart_with_failover_keeps_invariants(self):
        fabric = chaos_fabric()
        schedule = ChaosSchedule(19, actions=[
            VerticaRestart("node0002", at=1.4, downtime=1.0),
        ])
        writer, raised, report, controller = save_under_chaos(fabric, schedule)
        assert report.ok, report.describe()
        assert controller.summary().get("vertica_restart", 0) >= 1
        # the node must be recovered by drain time
        assert fabric.vertica.db.node_states["node0002"] == "UP"

    def test_never_downs_the_last_node(self):
        fabric = chaos_fabric()
        db = fabric.vertica.db
        db.fail_node("node0001")
        db.fail_node("node0002")
        schedule = ChaosSchedule(23, actions=[
            VerticaRestart("node0003", at=0.1, downtime=0.5),
        ])
        controller = fabric.attach_chaos(schedule)
        fabric.env.run()
        assert db.node_states["node0003"] == "UP"
        assert controller.summary().get("vertica_restart") is None


class TestLinkDegrade:
    def test_partition_stalls_then_heals(self):
        env = Environment()
        network = Network(env)
        link = Link(env, "wire", 100.0)
        done = network.transfer([link], 1000.0)

        def partition():
            yield env.timeout(2.0)
            network.set_link_capacity(link, 0.0)
            yield env.timeout(3.0)
            network.set_link_capacity(link, link.nominal_capacity)

        env.process(partition())
        env.run(done)
        # 2s at 100 B/s, 3s stalled, then 800 bytes at 100 B/s
        assert env.now == pytest.approx(13.0)

    def test_degrade_through_fabric_chaos(self):
        fabric = chaos_fabric()
        name = f"{fabric.vertica.node_names[0]}.external.rx"
        assert name in fabric.all_links()
        schedule = ChaosSchedule(29, actions=[
            LinkDegrade(name, at=1.5, factor=0.0, duration=0.8),
        ])
        writer, raised, report, controller = save_under_chaos(fabric, schedule)
        assert report.ok, report.describe()
        assert controller.summary().get("link_degrade") == 1

    def test_rate_log_is_bounded(self):
        env = Environment()
        network = Network(env)
        link = Link(env, "wire", 100.0, rate_log_limit=4)
        for __ in range(60):
            network.transfer([link], 10.0)
            env.run()
        assert len(link.rate_log) <= 8


class TestProbeRules:
    def test_probe_kills_are_budgeted_and_survivable(self):
        fabric = chaos_fabric()
        schedule = ChaosSchedule(31, probe_rules=[
            ProbeRule(label="s2v:", rate=1.0, max_kills=3),
        ])
        writer, raised, report, controller = save_under_chaos(fabric, schedule)
        assert raised is None
        assert report.ok, report.describe()
        assert controller.summary().get("task_kill") == 3


class TestFailureCleanup:
    def make_failing_writer(self):
        env = Environment()
        schedule = {(0, attempt): "s2v:phase1_data_staged"
                    for attempt in range(4)}
        vertica = SimVerticaCluster(env=env, num_nodes=3)
        spark = SparkSession(
            env=env, cluster=vertica.sim_cluster, num_workers=4,
            fault_policy=ProbeFailurePolicy(schedule), max_failures=4,
        )
        session = vertica.db.connect()
        session.execute("CREATE TABLE dest (id INTEGER, v FLOAT)")
        session.execute("INSERT INTO dest VALUES (999, 9.9)")
        session.close()
        df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=4)
        writer = S2VWriter(
            spark, "overwrite",
            {"db": vertica, "table": "dest", "numpartitions": 4}, df,
        )
        return env, vertica, writer

    def test_failed_save_drops_temp_tables_but_keeps_record(self):
        env, vertica, writer = self.make_failing_writer()
        checker = InvariantChecker(vertica)
        with pytest.raises(JobFailedError) as excinfo:
            writer.save()
        env.run()
        # Temp tables are gone, the permanent record and target remain.
        assert temp_tables_of(vertica.db, writer.job_name) == []
        session = vertica.db.connect()
        status = session.scalar(
            f"SELECT status FROM {FINAL_STATUS_TABLE} "
            f"WHERE job_name = '{writer.job_name}'"
        )
        assert status == "IN_PROGRESS"
        assert session.execute("SELECT * FROM dest").rows == [(999, 9.9)]
        session.close()
        report = checker.check_s2v_save(
            writer.job_name, "dest", ROWS,
            prior_rows=[(999, 9.9)], raised=excinfo.value,
        )
        assert report.ok, report.describe()


class TestRetryBugfixes:
    def test_retries_exhausted_is_distinct_and_carries_cause(self):
        cluster = SimVerticaCluster(num_nodes=1)
        blocker = cluster.db.connect()
        blocker.execute("CREATE TABLE t (id INTEGER)")
        blocker.execute("BEGIN")
        blocker.execute("INSERT INTO t VALUES (1)")  # holds an I lock
        conn = cluster.connect()

        def driver():
            with pytest.raises(RetriesExhausted) as excinfo:
                yield from conn.execute_with_retry(
                    "UPDATE t SET id = 2", max_retries=3
                )
            assert excinfo.value.attempts == 4
            assert isinstance(excinfo.value.last_error, LockContention)

        cluster.run(driver())
        blocker.close()

    def test_non_lock_errors_are_not_retried(self):
        cluster = SimVerticaCluster(num_nodes=1)
        conn = cluster.connect()

        def driver():
            with pytest.raises(SqlError):
                yield from conn.execute_with_retry("SELEKT broken", max_retries=50)

        started = cluster.env.now
        cluster.run(driver())
        assert cluster.env.now == started  # no backoff sleeps happened

    def test_retry_delay_is_deterministic_and_jittered(self):
        cluster = SimVerticaCluster(num_nodes=1)
        conn = cluster.connect()
        first = [conn.retry_delay(attempt) for attempt in range(1, 6)]
        again = [conn.retry_delay(attempt) for attempt in range(1, 6)]
        assert first == again
        other = cluster.connect()
        assert first != [other.retry_delay(a) for a in range(1, 6)]


class TestTransactionLockRelease:
    def test_failed_commit_releases_locks_and_aborts(self):
        cluster = SimVerticaCluster(num_nodes=1)
        db = cluster.db
        txn = db.begin()
        txn.lock("T", "X")
        txn.post_commit.append(lambda epoch: None)  # force the write path

        def boom():
            raise RuntimeError("mid-commit crash")

        txn._epochs.advance = boom
        with pytest.raises(RuntimeError):
            txn.commit(db.storage)
        assert txn.status == ABORTED
        assert db.locks.held_tables() == {}

    def test_abort_releases_locks_even_if_clear_fails(self):
        cluster = SimVerticaCluster(num_nodes=1)
        db = cluster.db
        txn = db.begin()
        txn.lock("T", "X")
        txn.abort()
        assert db.locks.held_tables() == {}


class TestV2SEpochSnapshot:
    def test_scan_ignores_concurrent_s2v_append(self):
        from repro.connector.v2s import VerticaRelation
        from repro.spark.context import _compute

        fabric = chaos_fabric()
        session = fabric.vertica.db.connect()
        session.execute(
            "CREATE TABLE shared (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
        )
        values = ", ".join(f"({i}, {v})" for i, v in ROWS)
        session.execute(f"INSERT INTO shared VALUES {values}")
        session.close()
        checker = InvariantChecker(fabric.vertica)
        # Mild chaos on top: one executor dies while both jobs run.
        schedule = ChaosSchedule(37, actions=[
            ExecutorCrash(fabric.spark.workers[1].name, at=1.6,
                          restart_after=1.0),
        ])
        fabric.attach_chaos(schedule)

        relation = VerticaRelation(fabric.spark, {
            "db": fabric.vertica, "table": "shared", "numpartitions": 4,
            "scale_factor": 40.0,
        })
        rdd = relation.build_scan()

        def make_thunk(split):
            def thunk(ctx):
                rows = yield from _compute(rdd, split, ctx)
                return rows
            return thunk

        v2s_job = fabric.spark.scheduler.submit(
            [make_thunk(i) for i in range(rdd.num_partitions)], name="v2s"
        )
        # The S2V append drives the shared clock, so the scan's tasks
        # interleave with the writer advancing the epoch under them.
        extra = [(5000 + i, 1.0) for i in range(60)]
        df = fabric.spark.create_dataframe(extra, SCHEMA, num_partitions=4)
        S2VWriter(
            fabric.spark, "append",
            {"db": fabric.vertica, "table": "shared", "numpartitions": 4,
             "scale_factor": 40.0},
            df,
        ).save()
        results = fabric.env.run(v2s_job.done)
        fabric.env.run()
        rows = [row for partition in results for row in partition]
        # The pinned epoch predates the append: exactly the original rows.
        assert sorted(rows) == sorted(ROWS)
        report = checker.check_v2s_scan("shared", rdd.epoch, rows)
        assert report.ok, report.describe()
        # ... and the append itself landed exactly once at the latest epoch.
        session = fabric.vertica.db.connect()
        final = session.execute("SELECT * FROM shared").rows
        session.close()
        assert sorted(final) == sorted(ROWS + extra)


class TestExecutorLostCause:
    def test_repr_and_fields(self):
        cause = ExecutorLost("spark3", "chaos")
        assert cause.node_name == "spark3"
        assert "spark3" in repr(cause)


class TestCleanupFailureSurfacing:
    """Swallowed S2V teardown errors must be visible, never fatal."""

    def test_warn_is_visible_but_does_not_flip_ok(self):
        from repro.chaos.invariants import InvariantReport

        report = InvariantReport("cleanup")
        report.warn("cleanup-failures-surfaced", "2 errors swallowed")
        assert report.ok
        text = report.describe()
        assert "1 warnings" in text
        assert "WARN cleanup-failures-surfaced" in text

    def test_checker_warns_when_cleanup_errors_were_swallowed(self):
        # A fresh telemetry-enabled fabric zeroes the global counter.
        fabric = chaos_fabric()
        checker = InvariantChecker(fabric.vertica)
        clean = checker.check_cleanup_failures()
        assert clean.ok and not clean.warnings

        telemetry.counter("s2v.cleanup_failures").inc()
        dirty = checker.check_cleanup_failures()
        assert dirty.ok, dirty.describe()  # a warning, not a violation
        assert [w.name for w in dirty.warnings] == ["cleanup-failures-surfaced"]
        assert "1 S2V cleanup error(s)" in dirty.describe()

    def test_trial_result_describe_shows_cleanup_failures(self):
        from repro.chaos.invariants import InvariantReport

        ok_report = InvariantReport("cleanup")
        trial = TrialResult(
            "s2v", seed=7, mode="overwrite", speculation=False,
            raised=None, report=ok_report, injections=3, cleanup_failures=2,
        )
        assert "cleanup_failures=2" in trial.describe()
        silent = TrialResult(
            "s2v", seed=7, mode="overwrite", speculation=False,
            raised=None, report=ok_report, injections=3,
        )
        assert "cleanup_failures" not in silent.describe()
