"""Smoke test for the chaos soak harness (CI runs the full 25-seed soak)."""

from repro.bench.chaos_soak import (
    run_profile_trial,
    run_s2v_trial,
    run_soak,
    run_staged_s2v_trial,
    run_staged_v2s_trial,
    run_wlm_trial,
    summarize,
)


class TestSoakSmoke:
    def test_small_soak_holds_invariants(self):
        trials = run_soak(num_seeds=3, base_seed=100)
        # one S2V + V2S + agg + wlm + profile + staged-s2v + staged-v2s
        # + cache + adaptive per seed
        assert len(trials) == 27
        assert any(t.workload == "agg" for t in trials)
        assert any(t.workload == "wlm" for t in trials)
        assert any(t.workload == "profile" for t in trials)
        assert any(t.workload == "staged-s2v" for t in trials)
        assert any(t.workload == "staged-v2s" for t in trials)
        assert any(t.workload == "cache" for t in trials)
        assert any(t.workload == "adaptive" for t in trials)
        bad = [t for t in trials if not t.ok]
        assert not bad, "\n".join(t.describe() for t in bad)
        # The soak must actually exercise faults and still complete work.
        assert sum(t.injections for t in trials) > 0
        assert any(t.succeeded for t in trials)
        assert "0 invariant violations" in summarize(trials)

    def test_trials_are_replayable(self):
        first = run_s2v_trial(5, mode="append", speculation=True)
        again = run_s2v_trial(5, mode="append", speculation=True)
        assert first.ok and again.ok
        assert first.injections == again.injections
        assert first.succeeded == again.succeeded
        assert "--replay-seed 5" in first.replay_command()
        assert "--mode append" in first.replay_command()
        assert "--speculation" in first.replay_command()

    def test_profile_trial_exact_answers_and_no_leaks(self):
        # A fault-free-success seed and a clean-failure seed both hold the
        # bar; replayability mirrors the other workloads.
        trial = run_profile_trial(15485863)
        assert trial.ok, trial.describe()
        assert "no-leaked-sessions" in trial.report.checks
        assert "no-leaked-locks" in trial.report.checks
        if trial.succeeded:
            assert "profile-exact-answer" in trial.report.checks
            assert "profile-cost-reconciles" in trial.report.checks
        assert "--workload profile" in trial.replay_command()
        again = run_profile_trial(15485863)
        assert again.injections == trial.injections
        assert again.succeeded == trial.succeeded

    def test_wlm_trial_exactly_once_under_admission(self):
        # A seed whose schedule includes a pool storm (seeded, so stable):
        # exactly-once must hold while noisy neighbours fight the save for
        # the starved ingest pool's two slots.
        trial = run_wlm_trial(1299715)
        assert trial.ok, trial.describe()
        assert trial.injections > 0
        assert "no-leaked-pool-slots" in trial.report.checks
        assert "--workload wlm" in trial.replay_command()

    def test_staged_s2v_trial_audits_staging_fs(self):
        trial = run_staged_s2v_trial(3, mode="overwrite")
        assert trial.ok, trial.describe()
        assert "no-orphaned-staging-files" in trial.report.checks
        assert "--workload staged-s2v" in trial.replay_command()
        assert "--mode overwrite" in trial.replay_command()
        again = run_staged_s2v_trial(3, mode="overwrite")
        assert again.injections == trial.injections
        assert again.succeeded == trial.succeeded

    def test_staged_v2s_trial_audits_staging_fs(self):
        trial = run_staged_v2s_trial(103, speculation=True)
        assert trial.ok, trial.describe()
        assert "no-orphaned-staging-files" in trial.report.checks
        if trial.succeeded:
            assert "epoch-snapshot" in trial.report.checks
        assert "--workload staged-v2s" in trial.replay_command()
