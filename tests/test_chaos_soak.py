"""Smoke test for the chaos soak harness (CI runs the full 25-seed soak)."""

from repro.bench.chaos_soak import (
    run_s2v_trial,
    run_soak,
    run_wlm_trial,
    summarize,
)


class TestSoakSmoke:
    def test_small_soak_holds_invariants(self):
        trials = run_soak(num_seeds=3, base_seed=100)
        assert len(trials) == 12  # one S2V + V2S + agg + wlm per seed
        assert any(t.workload == "agg" for t in trials)
        assert any(t.workload == "wlm" for t in trials)
        bad = [t for t in trials if not t.ok]
        assert not bad, "\n".join(t.describe() for t in bad)
        # The soak must actually exercise faults and still complete work.
        assert sum(t.injections for t in trials) > 0
        assert any(t.succeeded for t in trials)
        assert "0 invariant violations" in summarize(trials)

    def test_trials_are_replayable(self):
        first = run_s2v_trial(5, mode="append", speculation=True)
        again = run_s2v_trial(5, mode="append", speculation=True)
        assert first.ok and again.ok
        assert first.injections == again.injections
        assert first.succeeded == again.succeeded
        assert "--replay-seed 5" in first.replay_command()
        assert "--mode append" in first.replay_command()
        assert "--speculation" in first.replay_command()

    def test_wlm_trial_exactly_once_under_admission(self):
        # A seed whose schedule includes a pool storm (seeded, so stable):
        # exactly-once must hold while noisy neighbours fight the save for
        # the starved ingest pool's two slots.
        trial = run_wlm_trial(1299715)
        assert trial.ok, trial.describe()
        assert trial.injections > 0
        assert "no-leaked-pool-slots" in trial.report.checks
        assert "--workload wlm" in trial.replay_command()
