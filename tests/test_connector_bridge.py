"""Unit tests for the simulation bridge: how statements become time.

Uses small purpose-built cost models so each charge (latency, DDL
latency, plan CPU, producer caps, shuffle flows, virtual weight) is
observable in isolation on the simulated clock.
"""

import pytest

from repro.connector import SimVerticaCluster, VerticaCostModel
from repro.sim import Environment


def make_cluster(**model_kwargs):
    env = Environment()
    cluster = SimVerticaCluster(
        env=env, num_nodes=2, cost_model=VerticaCostModel(**model_kwargs)
    )
    client = cluster.sim_cluster.add_node("client", nics={"default": 125e6})
    return env, cluster, client


def run(env, generator):
    return env.run(env.process(generator))


class TestLatencies:
    def test_connect_charged_once(self):
        env, cluster, client = make_cluster(connect_latency=0.5)

        def driver():
            conn = cluster.connect(client_node=client)
            yield from conn.execute("SELECT 1")
            yield from conn.execute("SELECT 1")
            conn.close()

        run(env, driver())
        assert env.now == pytest.approx(0.5)  # once, not twice

    def test_query_vs_ddl_latency(self):
        env, cluster, client = make_cluster(query_latency=0.1, ddl_latency=1.0)

        def driver():
            conn = cluster.connect(client_node=client)
            yield from conn.execute("CREATE TABLE t (a INTEGER)")
            mark = env.now
            yield from conn.execute("SELECT 1")
            conn.close()
            return mark

        ddl_done = run(env, driver())
        assert ddl_done == pytest.approx(1.0)
        assert env.now == pytest.approx(1.1)

    def test_commit_statements_are_light(self):
        env, cluster, client = make_cluster(query_latency=0.1, query_plan_cpu=5.0)

        def driver():
            conn = cluster.connect(client_node=client)
            yield from conn.execute("BEGIN")
            yield from conn.execute("COMMIT")
            conn.close()

        run(env, driver())
        # BEGIN/COMMIT pay latency but never the planner CPU.
        assert env.now == pytest.approx(0.2)


class TestDataCharges:
    def populate(self, cluster, rows=10):
        session = cluster.db.connect()
        session.execute("CREATE TABLE t (a INTEGER) SEGMENTED BY HASH(a) ALL NODES")
        values = ", ".join(f"({i})" for i in range(rows))
        session.execute(f"INSERT INTO t VALUES {values}")
        session.close()

    def test_result_bytes_flow_at_connection_cap(self):
        env, cluster, client = make_cluster(
            per_connection_rate_cap=100.0, jdbc_int_bytes=10
        )
        self.populate(cluster, rows=10)

        def driver():
            conn = cluster.connect(client_node=client)
            result = yield from conn.execute("SELECT a FROM t")
            conn.close()
            return result

        run(env, driver())
        # 10 rows x 10 wire bytes at 100 B/s = 1 s.
        assert env.now == pytest.approx(1.0)

    def test_weight_scales_transfer_time(self):
        env, cluster, client = make_cluster(
            per_connection_rate_cap=100.0, jdbc_int_bytes=10
        )
        self.populate(cluster, rows=10)

        def driver():
            conn = cluster.connect(client_node=client)
            yield from conn.execute("SELECT a FROM t", weight=5.0)
            conn.close()

        run(env, driver())
        assert env.now == pytest.approx(5.0)

    def test_remote_rows_cross_internal_network(self):
        env, cluster, client = make_cluster(jdbc_int_bytes=10)
        self.populate(cluster, rows=50)

        def driver():
            conn = cluster.connect(cluster.node_names[0], client_node=client)
            yield from conn.execute("SELECT a FROM t")
            conn.close()

        run(env, driver())
        # Rows living on node 2 shuffled to the contacted node 1.
        assert cluster.internal_bytes() > 0
        assert cluster.external_bytes() == pytest.approx(500.0)

    def test_local_only_query_has_no_shuffle(self):
        env, cluster, client = make_cluster(jdbc_int_bytes=10)
        self.populate(cluster, rows=50)
        table = cluster.db.catalog.table("t")
        segment = table.ring.segments[0]

        def driver():
            conn = cluster.connect(segment.node, client_node=client)
            yield from conn.execute(
                f"SELECT a FROM t WHERE HASH(a) >= {segment.lo} "
                f"AND HASH(a) < {segment.hi}"
            )
            conn.close()

        run(env, driver())
        assert cluster.internal_bytes() == 0.0

    def test_copy_charges_ingest_and_redistribution(self):
        env, cluster, client = make_cluster(copy_rate_cap=1000.0)
        session = cluster.db.connect()
        session.execute("CREATE TABLE t (a INTEGER) SEGMENTED BY HASH(a) ALL NODES")
        session.close()
        payload = "".join(f"{i}\n" for i in range(100))

        def driver():
            conn = cluster.connect(cluster.node_names[0], client_node=client)
            yield from conn.execute("COPY t FROM STDIN", copy_data=payload)
            conn.close()

        run(env, driver())
        nbytes = len(payload.encode())
        assert env.now >= nbytes / 1000.0
        assert cluster.internal_bytes() > 0  # rows redistributed to node 2

    def test_retry_backs_off_on_contention(self):
        env, cluster, client = make_cluster(query_latency=0.01)
        session = cluster.db.connect()
        session.execute("CREATE TABLE t (a INTEGER)")
        session.execute("INSERT INTO t VALUES (1)")
        # Hold the X lock with an open transaction.
        session.execute("BEGIN")
        session.execute("UPDATE t SET a = 2")

        def releaser():
            yield env.timeout(1.0)
            session.execute("COMMIT")

        def driver():
            conn = cluster.connect(cluster.node_names[1], client_node=client)
            result = yield from conn.execute_with_retry("UPDATE t SET a = 3")
            conn.close()
            return result.rowcount

        env.process(releaser())
        count = run(env, driver())
        assert count == 1
        assert env.now >= 1.0  # had to wait for the lock holder
