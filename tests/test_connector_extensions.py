"""Tests for the RDD-based connector API and the two-stage writer."""

import pytest

from repro.baselines.hdfs_source import SimHdfsCluster
from repro.connector import SimVerticaCluster
from repro.connector.rdd_api import (
    rdd_to_vertica,
    vertica_to_labeled_points,
    vertica_to_rdd,
)
from repro.connector.twostage import TwoStageWriter, save_two_stage
from repro.sim import Environment
from repro.spark import SparkSession, StructField, StructType
from repro.spark.errors import AnalysisError

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])


@pytest.fixture
def fabric():
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=4)
    return vertica, spark


@pytest.fixture
def populated(fabric):
    vertica, spark = fabric
    session = vertica.db.connect()
    session.execute(
        "CREATE TABLE src (id INTEGER, x FLOAT, label INTEGER) "
        "SEGMENTED BY HASH(id) ALL NODES"
    )
    values = ", ".join(
        f"({i}, {i * 0.5}, {1 if i % 2 else 0})" for i in range(100)
    )
    session.execute(f"INSERT INTO src VALUES {values}")
    return vertica, spark, session


class TestRddApi:
    def test_vertica_to_rdd(self, populated):
        vertica, spark, __ = populated
        rdd = vertica_to_rdd(spark, {"db": vertica, "table": "src",
                                     "numpartitions": 8})
        rows = rdd.collect()
        assert len(rows) == 100
        assert sorted(r[0] for r in rows) == list(range(100))

    def test_rdd_transformations_compose(self, populated):
        vertica, spark, __ = populated
        rdd = vertica_to_rdd(spark, {"db": vertica, "table": "src",
                                     "numpartitions": 4})
        doubled = rdd.map(lambda r: r[1] * 2).filter(lambda v: v > 90)
        assert len(doubled.collect()) == 9

    def test_column_pruning(self, populated):
        vertica, spark, __ = populated
        rdd = vertica_to_rdd(
            spark, {"db": vertica, "table": "src", "numpartitions": 4},
            columns=["X"],
        )
        rows = rdd.collect()
        assert all(len(r) == 1 for r in rows)

    def test_labeled_points(self, populated):
        vertica, spark, __ = populated
        points = vertica_to_labeled_points(
            spark,
            {"db": vertica, "table": "src", "numpartitions": 4},
            label_column="LABEL",
            feature_columns=["X", "ID"],
        ).collect()
        assert len(points) == 100
        sample = next(p for p in points if p.features[1] == 3.0)
        assert sample.label == 1.0
        assert sample.features == [1.5, 3.0]

    def test_labeled_points_validates_columns(self, populated):
        vertica, spark, __ = populated
        with pytest.raises(AnalysisError):
            vertica_to_labeled_points(
                spark, {"db": vertica, "table": "src"},
                label_column="NOPE", feature_columns=["X"],
            )
        with pytest.raises(AnalysisError):
            vertica_to_labeled_points(
                spark, {"db": vertica, "table": "src"},
                label_column="LABEL", feature_columns=[],
            )

    def test_rdd_to_vertica_round_trip(self, fabric):
        vertica, spark = fabric
        rdd = spark.parallelize([(i, float(i)) for i in range(50)], 4)
        result = rdd_to_vertica(
            spark, rdd, SCHEMA, {"db": vertica, "table": "out",
                                 "numpartitions": 4}
        )
        assert result.status == "SUCCESS"
        assert result.rows_loaded == 50
        back = vertica_to_rdd(spark, {"db": vertica, "table": "out",
                                      "numpartitions": 4})
        assert sorted(back.collect()) == [(i, float(i)) for i in range(50)]

    def test_rdd_arity_validated(self, fabric):
        vertica, spark = fabric
        from repro.spark.errors import JobFailedError

        rdd = spark.parallelize([(1, 2.0, "extra")], 1)
        with pytest.raises(JobFailedError):
            rdd_to_vertica(spark, rdd, SCHEMA,
                           {"db": vertica, "table": "bad", "numpartitions": 1})


class TestTwoStage:
    def make_hdfs(self, vertica):
        return SimHdfsCluster(vertica.env, vertica.sim_cluster, num_nodes=4,
                              block_size=1 << 20)

    def test_overwrite_round_trip(self, fabric):
        vertica, spark = fabric
        hdfs = self.make_hdfs(vertica)
        rows = [(i, i * 0.5) for i in range(120)]
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=4)
        result = save_two_stage(
            spark, hdfs, df, {"db": vertica, "table": "ts", "numpartitions": 4}
        )
        assert result.status == "SUCCESS"
        assert result.rows_loaded == 120
        session = vertica.db.connect()
        assert sorted(session.execute("SELECT * FROM ts").rows) == sorted(rows)

    def test_landing_zone_cleaned_up(self, fabric):
        vertica, spark = fabric
        hdfs = self.make_hdfs(vertica)
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        save_two_stage(spark, hdfs, df,
                       {"db": vertica, "table": "ts", "numpartitions": 1})
        assert hdfs.fs.list("/twostage/") == []

    def test_append_mode(self, fabric):
        vertica, spark = fabric
        hdfs = self.make_hdfs(vertica)
        df1 = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        df2 = spark.create_dataframe([(2, 2.0)], SCHEMA, num_partitions=1)
        save_two_stage(spark, hdfs, df1,
                       {"db": vertica, "table": "ts", "numpartitions": 1})
        save_two_stage(spark, hdfs, df2,
                       {"db": vertica, "table": "ts", "numpartitions": 1},
                       mode="append")
        session = vertica.db.connect()
        assert session.scalar("SELECT COUNT(*) FROM ts") == 2

    def test_append_requires_target(self, fabric):
        vertica, spark = fabric
        hdfs = self.make_hdfs(vertica)
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        with pytest.raises(AnalysisError):
            save_two_stage(spark, hdfs, df,
                           {"db": vertica, "table": "missing",
                            "numpartitions": 1}, mode="append")

    def test_invalid_mode(self, fabric):
        vertica, spark = fabric
        hdfs = self.make_hdfs(vertica)
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=1)
        with pytest.raises(AnalysisError):
            TwoStageWriter(spark, hdfs, "ignore",
                           {"db": vertica, "table": "ts"}, df)

    def test_two_stage_moves_data_twice(self, fabric):
        """The §5 prediction: an intermediate full copy of the data."""
        from repro.bench.fabric import Fabric
        from repro.workloads import make_d1

        fab = Fabric(with_hdfs=True)
        d1 = make_d1(real_rows=500)
        df = fab.dataframe_of(d1, 16)
        start = fab.env.now
        save_two_stage(
            fab.spark, fab.hdfs, df,
            {"db": fab.vertica, "table": "ts", "numpartitions": 16,
             "scale_factor": d1.scale},
        )
        two_stage_time = fab.env.now - start
        fab2 = Fabric()
        single_time = fab2.s2v_save(make_d1(real_rows=500), "ss", 16)
        assert two_stage_time > single_time  # the extra copy costs time
