"""Tests for MD: model deployment and in-database scoring (§3.3)."""

import pytest

from repro.connector import (
    SimVerticaCluster,
    deploy_pmml_model,
    get_pmml,
    install_pmml_udx,
    list_models,
)
from repro.connector.md import delete_model
from repro.pmml import PmmlError
from repro.sim import Environment
from repro.spark import SparkSession
from repro.spark.mllib import (
    LabeledPoint,
    train_kmeans,
    train_linear_regression,
    train_logistic_regression,
)
from repro.vertica.errors import CatalogError


@pytest.fixture
def fabric():
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vc.sim_cluster, num_workers=4)
    return vc, spark


def iris_like_table(vc):
    session = vc.db.connect()
    session.execute(
        "CREATE TABLE iristable (sepal_length FLOAT, sepal_width FLOAT, "
        "petal_length FLOAT, petal_width FLOAT)"
    )
    rows = [
        (5.1, 3.5, 1.4, 0.2),
        (7.0, 3.2, 4.7, 1.4),
        (6.3, 3.3, 6.0, 2.5),
        (4.9, 3.0, 1.4, 0.2),
    ]
    values = ", ".join(f"({a}, {b}, {c}, {d})" for a, b, c, d in rows)
    session.execute(f"INSERT INTO iristable VALUES {values}")
    return session, rows


class TestDeployment:
    def test_deploy_and_get(self, fabric):
        vc, __ = fabric
        model = train_linear_regression(
            [LabeledPoint(2 * x, [float(x)]) for x in range(5)]
        )
        xml = model.to_pmml("m1")
        deploy_pmml_model(vc.db, "m1", xml)
        assert get_pmml(vc.db, "m1") == xml

    def test_metadata_recorded(self, fabric):
        vc, __ = fabric
        model = train_linear_regression(
            [LabeledPoint(2 * x, [float(x), 0.0]) for x in range(5)]
        )
        deploy_pmml_model(vc.db, "meta_model", model.to_pmml())
        models = list_models(vc.db)
        assert len(models) == 1
        entry = models[0]
        assert entry["MODEL_NAME"] == "meta_model"
        assert entry["MODEL_TYPE"] == "RegressionModel"
        assert entry["NUM_FEATURES"] == 2
        assert entry["SIZE_BYTES"] > 100

    def test_duplicate_deploy_rejected(self, fabric):
        vc, __ = fabric
        model = train_linear_regression([LabeledPoint(1, [1.0])])
        deploy_pmml_model(vc.db, "dup", model.to_pmml())
        with pytest.raises(CatalogError):
            deploy_pmml_model(vc.db, "dup", model.to_pmml())
        deploy_pmml_model(vc.db, "dup", model.to_pmml(), overwrite=True)
        assert len(list_models(vc.db)) == 1

    def test_invalid_pmml_rejected_before_storage(self, fabric):
        vc, __ = fabric
        with pytest.raises(PmmlError):
            deploy_pmml_model(vc.db, "bad", "<NotPMML/>")
        assert not vc.db.dfs.exists("pmml_models/bad")
        assert list_models(vc.db) == []

    def test_delete_model(self, fabric):
        vc, __ = fabric
        model = train_linear_regression([LabeledPoint(1, [1.0])])
        deploy_pmml_model(vc.db, "gone", model.to_pmml())
        delete_model(vc.db, "gone")
        assert list_models(vc.db) == []
        with pytest.raises(CatalogError):
            get_pmml(vc.db, "gone")

    def test_model_stored_in_dfs(self, fabric):
        vc, __ = fabric
        model = train_linear_regression([LabeledPoint(1, [1.0])])
        deploy_pmml_model(vc.db, "dfs_model", model.to_pmml())
        assert vc.db.dfs.list("pmml_models/") == ["pmml_models/dfs_model"]
        assert vc.db.dfs.owner_node("pmml_models/dfs_model") in vc.db.node_names


class TestInDatabaseScoring:
    def test_pmml_predict_regression(self, fabric):
        """The paper's §3.3 example, end to end."""
        vc, __ = fabric
        session, rows = iris_like_table(vc)
        points = [
            LabeledPoint(a + 2 * b - c + 0.5 * d, [a, b, c, d])
            for a, b, c, d in rows
        ]
        model = train_linear_regression(
            points,
            names=["sepal_length", "sepal_width", "petal_length", "petal_width"],
        )
        deploy_pmml_model(vc.db, "regression", model.to_pmml("regression"))
        install_pmml_udx(vc.db)
        result = session.execute(
            "SELECT sepal_length, sepal_width, petal_length, petal_width, "
            "PMMLPredict(sepal_length, sepal_width, petal_length, "
            "petal_width USING PARAMETERS model_name='regression') "
            "FROM IrisTable"
        )
        assert len(result.rows) == len(rows)
        for row in result.rows:
            features, prediction = list(row[:4]), row[4]
            assert prediction == pytest.approx(model.predict(features))

    def test_pmml_predict_kmeans(self, fabric):
        vc, __ = fabric
        session, rows = iris_like_table(vc)
        model = train_kmeans([list(r) for r in rows], k=2)
        deploy_pmml_model(vc.db, "clusters", model.to_pmml("clusters"))
        install_pmml_udx(vc.db)
        result = session.execute(
            "SELECT sepal_length, sepal_width, petal_length, petal_width, "
            "PMMLPredict(sepal_length, sepal_width, petal_length, "
            "petal_width USING PARAMETERS model_name='clusters') FROM iristable"
        )
        for row in result.rows:
            assert int(row[4]) == model.predict(list(row[:4]))

    def test_predict_requires_model_name(self, fabric):
        from repro.vertica.errors import SqlError

        vc, __ = fabric
        session, __ = iris_like_table(vc)
        install_pmml_udx(vc.db)
        with pytest.raises(SqlError):
            session.execute(
                "SELECT PMMLPredict(sepal_length USING PARAMETERS x=1) "
                "FROM iristable"
            )

    def test_predict_unknown_model(self, fabric):
        vc, __ = fabric
        session, __ = iris_like_table(vc)
        install_pmml_udx(vc.db)
        with pytest.raises(CatalogError):
            session.execute(
                "SELECT PMMLPredict(sepal_length USING PARAMETERS "
                "model_name='ghost') FROM iristable"
            )


class TestFullAnalyticsPipeline:
    def test_v2s_train_deploy_score_loop(self, fabric):
        """Figure 1's closed loop: V2S → train in Spark → MD → in-DB predict."""
        vc, spark = fabric
        session = vc.db.connect()
        session.execute(
            "CREATE TABLE events (x1 FLOAT, x2 FLOAT, label INTEGER) "
            "SEGMENTED BY HASH(x1) ALL NODES"
        )
        rows = [(float(i % 10), float((i * 3) % 7), 1 if (i % 10) > 4 else 0)
                for i in range(200)]
        values = ", ".join(f"({a}, {b}, {c})" for a, b, c in rows)
        session.execute(f"INSERT INTO events VALUES {values}")

        # V2S: load training data into Spark.
        df = spark.read.format("vertica").options(
            db=vc, table="events", numpartitions=8
        ).load()
        training = df.collect()
        assert len(training) == 200

        # Train in Spark MLlib.
        points = [LabeledPoint(float(label), [a, b]) for a, b, label in training]
        model = train_logistic_regression(points, iterations=150,
                                          names=["x1", "x2"])

        # MD: deploy to Vertica and score in-database.
        deploy_pmml_model(vc.db, "clicks", model.to_pmml("clicks"))
        install_pmml_udx(vc.db)
        result = session.execute(
            "SELECT x1, x2, PMMLPredict(x1, x2 USING PARAMETERS "
            "model_name='clicks') AS p FROM events"
        )
        for x1, x2, probability in result.rows:
            assert probability == pytest.approx(
                model.predict_probability([x1, x2])
            )
        # The model actually learned the boundary.
        correct = sum(
            1 for x1, x2, p in result.rows
            if (p >= 0.5) == (x1 > 4)
        )
        assert correct >= 180
