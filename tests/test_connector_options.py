"""Tests for connector option parsing and validation."""

import pytest

from repro.connector import SimVerticaCluster
from repro.connector.options import (
    ConnectorOptions,
    DEFAULT_S2V_PARTITIONS,
    DEFAULT_V2S_PARTITIONS,
    OptionsError,
)
from repro.sim import Environment


@pytest.fixture
def cluster():
    return SimVerticaCluster(env=Environment(), num_nodes=4)


def opts(cluster, **kwargs):
    base = {"db": cluster, "table": "t"}
    base.update(kwargs)
    return base


class TestRequiredOptions:
    def test_db_required(self):
        with pytest.raises(OptionsError):
            ConnectorOptions({"table": "t"})

    def test_table_required(self, cluster):
        with pytest.raises(OptionsError):
            ConnectorOptions({"db": cluster})
        with pytest.raises(OptionsError):
            ConnectorOptions({"db": cluster, "table": ""})

    def test_unknown_option_rejected_with_list(self, cluster):
        with pytest.raises(OptionsError) as info:
            ConnectorOptions(opts(cluster, numpartitoins=4))  # typo
        assert "numpartitoins" in str(info.value)
        assert "numpartitions" in str(info.value)  # the known list helps


class TestDefaults:
    def test_load_default_partitions(self, cluster):
        parsed = ConnectorOptions(opts(cluster))
        assert parsed.num_partitions == DEFAULT_V2S_PARTITIONS == 32

    def test_save_default_partitions(self, cluster):
        parsed = ConnectorOptions(opts(cluster), for_save=True)
        assert parsed.num_partitions == DEFAULT_S2V_PARTITIONS == 128

    def test_host_defaults_to_first_node(self, cluster):
        parsed = ConnectorOptions(opts(cluster))
        assert parsed.host == cluster.node_names[0]

    def test_misc_defaults(self, cluster):
        parsed = ConnectorOptions(opts(cluster))
        assert parsed.user == "dbadmin"
        assert parsed.scale_factor == 1.0
        assert parsed.failed_rows_percent_tolerance == 0.0
        assert parsed.avro_codec == "deflate"
        assert parsed.prehash_partitioning is False


class TestValidation:
    def test_table_uppercased_with_schema(self, cluster):
        parsed = ConnectorOptions(opts(cluster, dbschema="public"))
        assert parsed.table == "PUBLIC.T"

    def test_host_must_be_cluster_node(self, cluster):
        with pytest.raises(OptionsError):
            ConnectorOptions(opts(cluster, host="not-a-node"))

    def test_explicit_host(self, cluster):
        parsed = ConnectorOptions(opts(cluster, host=cluster.node_names[2]))
        assert parsed.host == cluster.node_names[2]

    @pytest.mark.parametrize("bad", [0, -1, "x", 1.5])
    def test_numpartitions_positive_int(self, cluster, bad):
        with pytest.raises(OptionsError):
            ConnectorOptions(opts(cluster, numpartitions=bad))

    def test_numpartitions_accepts_numeric_string(self, cluster):
        parsed = ConnectorOptions(opts(cluster, numpartitions="16"))
        assert parsed.num_partitions == 16

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2])
    def test_tolerance_range(self, cluster, bad):
        with pytest.raises(OptionsError):
            ConnectorOptions(opts(cluster, failed_rows_percent_tolerance=bad))

    def test_scale_factor_positive(self, cluster):
        with pytest.raises(OptionsError):
            ConnectorOptions(opts(cluster, scale_factor=0))

    @pytest.mark.parametrize("value,expected", [
        (True, True), ("true", True), ("YES", True), ("1", True),
        (False, False), ("false", False), ("0", False), ("off", False),
    ])
    def test_prehash_bool_parsing(self, cluster, value, expected):
        parsed = ConnectorOptions(opts(cluster, prehash_partitioning=value))
        assert parsed.prehash_partitioning is expected

    def test_reject_max_optional(self, cluster):
        assert ConnectorOptions(opts(cluster)).reject_max is None
        parsed = ConnectorOptions(opts(cluster, reject_max="7"))
        assert parsed.reject_max == 7
