"""Tests for S2V: the 5-phase exactly-once save protocol under failures.

These are the paper's §3.2.1 guarantees, exercised with fault injection:
task failures at every phase boundary, restarts, speculative duplicates,
and total Spark failure must never produce partial or duplicate loads.
"""

import pytest

from repro.connector import SimVerticaCluster
from repro.connector.defaultsource import DefaultSource
from repro.connector.s2v import FINAL_STATUS_TABLE
from repro.sim import Environment
from repro.spark import JobFailedError, SparkSession, StructField, StructType
from repro.spark.faults import FailOncePerTaskPolicy, ProbeFailurePolicy

SCHEMA = StructType([StructField("id", "long"), StructField("val", "double")])
ROWS = [(i, float(i) * 0.25) for i in range(200)]

PHASE_PROBES = [
    "s2v:phase1_data_staged",
    "s2v:phase1_before_commit",
    "s2v:phase1_after_commit",
    "s2v:after_phase1",
    "s2v:after_phase2",
    "s2v:after_phase3",
    "s2v:after_phase4",
    "s2v:phase5_before_rename",
    "s2v:phase5_after_rename",
]


def make_fabric(fault_policy=None, speculation=False, kill_losers=False):
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(
        env=env,
        cluster=vc.sim_cluster,
        num_workers=8,
        fault_policy=fault_policy,
        speculation=speculation,
        kill_speculative_losers=kill_losers,
    )
    return vc, spark


def save(vc, spark, rows=ROWS, mode="overwrite", table="dest", **extra):
    options = {"db": vc, "table": table, "numpartitions": 8}
    options.update(extra)
    df = spark.create_dataframe(rows, SCHEMA, num_partitions=8)
    df.write.format("vertica").options(options).mode(mode).save()
    return DefaultSource.last_save_result


def table_rows(vc, table="dest"):
    session = vc.db.connect()
    try:
        return sorted(session.execute(f"SELECT * FROM {table}").rows)
    finally:
        session.close()


class TestHappyPath:
    def test_overwrite_creates_table(self):
        vc, spark = make_fabric()
        result = save(vc, spark)
        assert table_rows(vc) == sorted(ROWS)
        assert result.status == "SUCCESS"
        assert result.rows_loaded == 200
        assert result.rows_rejected == 0

    def test_overwrite_replaces_existing(self):
        vc, spark = make_fabric()
        save(vc, spark, rows=[(999, 1.0)])
        save(vc, spark)
        assert table_rows(vc) == sorted(ROWS)

    def test_append_adds_rows(self):
        vc, spark = make_fabric()
        save(vc, spark)
        save(vc, spark, rows=[(1000 + i, 1.0) for i in range(50)], mode="append")
        assert len(table_rows(vc)) == 250

    def test_append_to_missing_table_fails(self):
        vc, spark = make_fabric()
        from repro.connector.s2v import S2VError

        with pytest.raises(S2VError):
            save(vc, spark, mode="append")

    def test_errorifexists_and_ignore(self):
        vc, spark = make_fabric()
        save(vc, spark)
        from repro.connector.s2v import S2VError

        with pytest.raises(S2VError):
            save(vc, spark, mode="errorifexists")
        result = save(vc, spark, rows=[(5, 5.0)], mode="ignore")
        assert result is None
        assert len(table_rows(vc)) == 200  # untouched

    def test_temp_tables_cleaned_up(self):
        vc, spark = make_fabric()
        result = save(vc, spark)
        tables = set(vc.db.catalog.tables)
        assert "DEST" in tables
        assert FINAL_STATUS_TABLE in tables
        assert not any(result.job_name in name for name in tables)

    def test_final_status_is_permanent_record(self):
        vc, spark = make_fabric()
        first = save(vc, spark)
        second = save(vc, spark, mode="append")
        session = vc.db.connect()
        rows = session.execute(
            f"SELECT job_name, status FROM {FINAL_STATUS_TABLE} ORDER BY job_name"
        ).rows
        names = [r[0] for r in rows]
        assert first.job_name in names
        assert second.job_name in names
        assert all(r[1] == "SUCCESS" for r in rows)

    def test_empty_dataframe(self):
        vc, spark = make_fabric()
        result = save(vc, spark, rows=[])
        assert result.status == "SUCCESS"
        assert table_rows(vc) == []

    def test_single_row(self):
        vc, spark = make_fabric()
        result = save(vc, spark, rows=[(1, 1.0)], numpartitions=4)
        assert table_rows(vc) == [(1, 1.0)]
        assert result.rows_loaded == 1

    def test_data_distributed_across_nodes(self):
        vc, spark = make_fabric()
        save(vc, spark)
        epoch = vc.db.epochs.current
        per_node = [
            vc.db.storage[n].live_row_count("DEST", epoch) for n in vc.db.node_names
        ]
        assert sum(per_node) == 200
        assert sum(1 for c in per_node if c > 0) >= 3


class TestExactlyOnceUnderFailures:
    @pytest.mark.parametrize("probe", PHASE_PROBES)
    def test_first_attempt_dies_at_every_phase_boundary(self, probe):
        """Kill every task's first attempt at each phase boundary: the
        retried tasks must still produce exactly one copy of the data."""
        vc, spark = make_fabric(fault_policy=FailOncePerTaskPolicy(probe))
        result = save(vc, spark)
        assert table_rows(vc) == sorted(ROWS), f"duplicate/partial at {probe}"
        assert result.status == "SUCCESS"
        assert result.rows_loaded == 200

    def test_failure_after_commit_does_not_duplicate(self):
        """The subtle §2.2.2 case: a task commits, then fails, then is
        restarted — its restart must not re-stage its data."""
        policy = ProbeFailurePolicy(
            {(i, 0): "s2v:phase1_after_commit" for i in range(8)}
        )
        vc, spark = make_fabric(fault_policy=policy)
        result = save(vc, spark)
        assert len(policy.injected) == 8
        assert table_rows(vc) == sorted(ROWS)
        assert result.rows_loaded == 200

    def test_multiple_failures_same_task(self):
        policy = ProbeFailurePolicy(
            {
                (3, 0): "s2v:phase1_data_staged",
                (3, 1): "s2v:phase1_after_commit",
            }
        )
        vc, spark = make_fabric(fault_policy=policy)
        save(vc, spark)
        assert table_rows(vc) == sorted(ROWS)

    def test_last_committer_crash_before_rename(self):
        """The winner dies between winning the race and renaming; its
        restart must still finalise the job exactly once."""

        class WinnerKiller(ProbeFailurePolicy):
            def __init__(self):
                super().__init__({})
                self.killed = False

            def on_probe(self, ctx, label):
                if label == "s2v:phase5_before_rename" and not self.killed:
                    self.killed = True
                    from repro.spark.faults import InjectedFailure

                    raise InjectedFailure("winner dies before rename")

        policy = WinnerKiller()
        vc, spark = make_fabric(fault_policy=policy)
        result = save(vc, spark)
        assert policy.killed
        assert table_rows(vc) == sorted(ROWS)
        assert result.status == "SUCCESS"

    def test_driver_completes_rename_when_every_attempt_dies_there(self):
        """Driver-side overwrite recovery: if every task attempt that
        reaches the rename point dies there, the entitled committer has
        already flipped the status to SUCCESS and dropped the old target,
        and its retry returns early (the conditional update hits zero
        rows) — so the staging table survives the job and the *driver's*
        finalisation must complete the rename."""
        from repro.connector.s2v import S2VWriter
        from repro.spark.faults import FaultPolicy, InjectedFailure

        class AlwaysDieBeforeRename(FaultPolicy):
            def __init__(self):
                self.injected = set()

            def on_probe(self, ctx, label):
                if label == "s2v:phase5_before_rename":
                    self.injected.add((ctx.partition_id, ctx.attempt_number))
                    raise InjectedFailure("dies at the rename, every time")

        vc, spark = make_fabric()
        save(vc, spark, rows=[(999, 9.0)])  # pre-existing target
        policy = AlwaysDieBeforeRename()
        spark.scheduler.fault_policy = policy

        df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=8)
        writer = S2VWriter(spark, "overwrite", {"db": vc, "table": "dest",
                                                "numpartitions": 8}, df)
        vc.run(writer._setup(), name="setup")
        rdd, num_tasks = writer._partitioned_rdd()
        thunks = [writer._make_task(rdd, i) for i in range(num_tasks)]
        job = spark.scheduler.submit(thunks, writer.job_name)
        vc.env.run(job.done)  # the job still completes: retries return early
        assert policy.injected  # the entitled committer really died

        # Mid-crash state: status says SUCCESS, old target is dropped, and
        # the staging table is the only copy of the data.
        session = vc.db.connect()
        status = session.execute(
            f"SELECT status FROM {FINAL_STATUS_TABLE} "
            f"WHERE job_name = '{writer.job_name}'"
        ).scalar()
        session.close()
        assert status == "SUCCESS"
        assert not vc.db.catalog.has_table("DEST")
        assert vc.db.catalog.has_table(writer.staging.upper())

        result = vc.run(writer._finalize(job), name="finalize")
        assert result.status == "SUCCESS"
        assert result.rows_loaded == 200
        assert result.rows_rejected == 0
        assert table_rows(vc) == sorted(ROWS)
        assert not vc.db.catalog.has_table(writer.staging.upper())

    def test_total_spark_failure_leaves_target_untouched(self):
        """§3.2.1: 'in the worst case of total Spark failure the target
        table will not be affected', and the final status table records
        the unfinished job."""
        vc, spark = make_fabric()
        save(vc, spark, rows=[(1, 1.0)])  # target now exists with one row

        df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=8)
        from repro.connector.s2v import S2VWriter

        writer = S2VWriter(spark, "overwrite", {"db": vc, "table": "dest",
                                                "numpartitions": 8}, df)
        vc.run(writer._setup(), name="setup")
        rdd, num_tasks = writer._partitioned_rdd()
        thunks = [writer._make_task(rdd, i) for i in range(num_tasks)]
        job = spark.scheduler.submit(thunks, writer.job_name)

        def crash():
            yield vc.env.timeout(0.0)
            job.cancel("total Spark failure")

        vc.env.process(crash())
        with pytest.raises(JobFailedError):
            vc.env.run(job.done)
        vc.env.run()
        # Target untouched; final status still records the job in progress.
        assert table_rows(vc) == [(1, 1.0)]
        session = vc.db.connect()
        status = session.execute(
            f"SELECT status FROM {FINAL_STATUS_TABLE} "
            f"WHERE job_name = '{writer.job_name}'"
        ).scalar()
        assert status == "IN_PROGRESS"


class TestSpeculativeExecution:
    def test_duplicate_attempts_do_not_duplicate_data(self):
        """Speculative duplicates run their side effects to completion;
        the staging-table protocol must dedupe them."""
        vc, spark = make_fabric(speculation=True, kill_losers=False)
        result = save(vc, spark)
        vc.env.run()  # drain zombie duplicates
        assert table_rows(vc) == sorted(ROWS)
        assert result.rows_loaded == 200

    def test_duplicates_with_killed_losers(self):
        vc, spark = make_fabric(speculation=True, kill_losers=True)
        save(vc, spark)
        vc.env.run()
        assert table_rows(vc) == sorted(ROWS)


class TestRejectedRows:
    def oversized_rows(self):
        # varchar_length=5 below; these values overflow and get rejected.
        good = [(i, float(i)) for i in range(90)]
        return good

    def test_tolerance_allows_rejections(self):
        vc, spark = make_fabric()
        schema = StructType([StructField("id", "long"), StructField("tag", "string")])
        rows = [(i, "ok") for i in range(90)] + [(i, "waaaay too long") for i in range(10)]
        df = spark.create_dataframe(rows, schema, num_partitions=4)
        df.write.format("vertica").options(
            db=vc, table="tolerant", numpartitions=4, varchar_length=5,
            failed_rows_percent_tolerance=0.2,
        ).mode("overwrite").save()
        result = DefaultSource.last_save_result
        assert result.status == "SUCCESS"
        assert result.rows_loaded == 90
        assert result.rows_rejected == 10
        assert len(table_rows(vc, "tolerant")) == 90

    def test_tolerance_exceeded_fails_job(self):
        vc, spark = make_fabric()
        schema = StructType([StructField("id", "long"), StructField("tag", "string")])
        rows = [(i, "ok") for i in range(50)] + [(i, "far too long") for i in range(50)]
        df = spark.create_dataframe(rows, schema, num_partitions=4)
        with pytest.raises(JobFailedError):
            df.write.format("vertica").options(
                db=vc, table="strict", numpartitions=4, varchar_length=5,
                failed_rows_percent_tolerance=0.1,
            ).mode("overwrite").save()
        # Job recorded as FAILURE, target never created.
        session = vc.db.connect()
        statuses = session.execute(
            f"SELECT status FROM {FINAL_STATUS_TABLE}"
        ).rows
        assert ("FAILURE",) in statuses
        assert not vc.db.catalog.has_table("strict")


class TestPrehashPartitioning:
    def test_prehash_eliminates_internal_traffic(self):
        """§5 future work: pre-hashed partitions load node-locally."""
        vc, spark = make_fabric()
        save(vc, spark, table="prehashed", prehash_partitioning=True)
        assert table_rows(vc, "prehashed") == sorted(ROWS)
        assert vc.internal_bytes() == 0.0

    def test_default_mode_has_internal_traffic(self):
        vc, spark = make_fabric()
        cm = vc.cost_model
        # give the payload real weight so redistribution is visible
        save(vc, spark, table="plain")
        assert vc.internal_bytes() > 0.0


class TestSetupErrorNarrowing:
    """Regression: save_process wrapped _setup in a bare ``except
    Exception`` — a programming error (TypeError in option plumbing) ran
    the teardown path and re-raised with cleanup noise in between.  The
    handler is narrowed to the fabric's own error types."""

    def _writer(self):
        vc, spark = make_fabric()
        from repro.connector.s2v import S2VWriter

        df = spark.create_dataframe([(1, 1.0)], SCHEMA, num_partitions=2)
        writer = S2VWriter(
            spark, "overwrite",
            {"db": vc, "table": "dest", "numpartitions": 2}, df,
        )
        return vc, writer

    def _recording_cleanup(self, writer, monkeypatch, calls):
        def fake_cleanup(job):
            calls.append(job)
            return
            yield  # pragma: no cover - keeps this a generator function

        monkeypatch.setattr(writer, "_safe_cleanup", fake_cleanup)

    def test_programming_error_in_setup_skips_cleanup(self, monkeypatch):
        vc, writer = self._writer()
        calls = []
        self._recording_cleanup(writer, monkeypatch, calls)

        def broken_setup():
            raise TypeError("bad option plumbing")

        monkeypatch.setattr(writer, "_setup", broken_setup)
        with pytest.raises(TypeError, match="bad option plumbing"):
            next(writer.save_process())
        assert calls == []  # teardown must not run (and must not mask)

    def test_vertica_error_in_setup_still_cleans_up(self, monkeypatch):
        from repro.vertica.errors import CatalogError

        vc, writer = self._writer()
        calls = []
        self._recording_cleanup(writer, monkeypatch, calls)

        def conflicted_setup():
            raise CatalogError("simulated catalog conflict")

        monkeypatch.setattr(writer, "_setup", conflicted_setup)
        with pytest.raises(CatalogError, match="catalog conflict"):
            next(writer.save_process())
        assert calls == [None]  # cleanup ran before the re-raise

    def test_spark_error_in_setup_still_cleans_up(self, monkeypatch):
        from repro.spark.errors import SparkError

        vc, writer = self._writer()
        calls = []
        self._recording_cleanup(writer, monkeypatch, calls)

        def faulted_setup():
            raise SparkError("simulated fabric fault")

        monkeypatch.setattr(writer, "_setup", faulted_setup)
        with pytest.raises(SparkError, match="fabric fault"):
            next(writer.save_process())
        assert calls == [None]
