"""Tests for V2S: locality-aware parallel loads with snapshot consistency."""

import pytest

from repro.connector import SimVerticaCluster
from repro.connector.options import OptionsError
from repro.sim import Environment
from repro.spark import GreaterThan, LessThan, SparkSession


@pytest.fixture
def fabric():
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vc.sim_cluster, num_workers=8)
    return vc, spark


@pytest.fixture
def loaded(fabric):
    vc, spark = fabric
    session = vc.db.connect()
    session.execute(
        "CREATE TABLE src (id INTEGER, val FLOAT, name VARCHAR(30)) "
        "SEGMENTED BY HASH(id) ALL NODES"
    )
    values = ", ".join(f"({i}, {i * 0.5}, 'row{i}')" for i in range(300))
    session.execute(f"INSERT INTO src VALUES {values}")
    return vc, spark, session


def read_src(vc, spark, **extra):
    options = {"db": vc, "table": "src", "numpartitions": 8}
    options.update(extra)
    return spark.read.format("vertica").options(options).load()


class TestBasicLoad:
    def test_full_load(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark)
        rows = sorted(df.collect())
        assert len(rows) == 300
        assert rows[0] == (0, 0.0, "row0")
        assert df.columns == ["ID", "VAL", "NAME"]

    def test_partition_count_is_user_option(self, loaded):
        vc, spark, __ = loaded
        for partitions in (1, 2, 3, 7, 16):
            df = read_src(vc, spark, numpartitions=partitions)
            assert df.rdd().num_partitions == partitions
            assert len(df.collect()) == 300

    def test_more_partitions_than_segments(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark, numpartitions=64)
        assert len(df.collect()) == 300

    def test_schema_discovered_from_catalog(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark)
        assert [f.data_type for f in df.schema] == ["long", "double", "string"]

    def test_missing_table_fails(self, fabric):
        vc, spark = fabric
        from repro.vertica.errors import CatalogError

        with pytest.raises(CatalogError):
            spark.read.format("vertica").options(db=vc, table="nope").load()

    def test_bad_options(self, fabric):
        vc, spark = fabric
        with pytest.raises(OptionsError):
            spark.read.format("vertica").options(db=vc).load()
        with pytest.raises(OptionsError):
            spark.read.format("vertica").options(
                db=vc, table="t", bogus_option=1
            ).load()


class TestPushdown:
    def test_filter_pushdown(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark).filter(GreaterThan("ID", 290))
        rows = df.collect()
        assert sorted(r[0] for r in rows) == list(range(291, 300))

    def test_combined_filters(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark).filter(GreaterThan("ID", 100)).filter(
            LessThan("ID", 105)
        )
        assert sorted(r[0] for r in df.collect()) == [101, 102, 103, 104]

    def test_column_pruning(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark).select("NAME")
        rows = df.collect()
        assert len(rows) == 300
        assert all(len(r) == 1 for r in rows)

    def test_count_pushdown_single_query(self, loaded):
        vc, spark, __ = loaded
        df = read_src(vc, spark)
        assert df.count() == 300
        assert df.filter(GreaterThan("ID", 149)).count() == 150

    def test_pushdown_reduces_transfer(self, loaded):
        vc, spark, __ = loaded
        env_before = vc.external_bytes()
        read_src(vc, spark).filter(GreaterThan("ID", 294)).collect()
        selective_bytes = vc.external_bytes() - env_before
        before_full = vc.external_bytes()
        read_src(vc, spark).collect()
        full_bytes = vc.external_bytes() - before_full
        assert selective_bytes < full_bytes / 10


class TestLocality:
    def test_no_internal_shuffle(self, loaded):
        """§3.1.2: hash-range queries touch only node-local data."""
        vc, spark, __ = loaded
        read_src(vc, spark, numpartitions=16).collect()
        assert vc.internal_bytes() == 0.0
        assert vc.external_bytes() > 0.0

    def test_tasks_connect_to_all_nodes(self, loaded):
        vc, spark, __ = loaded
        read_src(vc, spark, numpartitions=16).collect()
        model = vc.cost_model
        per_node = [
            node.nics[model.external_nic].tx.bytes_total
            for node in vc.sim_nodes.values()
        ]
        assert all(nbytes > 0 for nbytes in per_node)

    def test_partition_union_is_exact(self, loaded):
        """Ranges are disjoint + complete: no row lost, none duplicated."""
        vc, spark, __ = loaded
        for partitions in (2, 4, 8, 13, 32):
            rows = read_src(vc, spark, numpartitions=partitions).collect()
            ids = sorted(r[0] for r in rows)
            assert ids == list(range(300)), f"partitions={partitions}"


class TestSnapshotConsistency:
    def test_concurrent_writes_do_not_tear_the_load(self, loaded):
        """Tasks pin one epoch, so a mid-job commit is invisible (§3.1.2)."""
        vc, spark, session = loaded
        from repro.connector.v2s import VerticaRelation

        relation = VerticaRelation(spark, {"db": vc, "table": "src",
                                           "numpartitions": 4})
        epoch = relation.pin_epoch()
        scan = relation.build_scan()
        # A writer commits between "job start" and task execution.
        session.execute("DELETE FROM src WHERE id < 150")
        rows = scan.collect()
        assert len(rows) == 300  # the pinned snapshot still sees all rows
        # A fresh load sees the new state.
        fresh = read_src(vc, spark).collect()
        assert len(fresh) == 150

    def test_restarted_task_sees_same_epoch(self, loaded):
        from repro.spark.faults import FailOncePerTaskPolicy

        vc, spark, session = loaded

        class Policy(FailOncePerTaskPolicy):
            def on_task_start(self, ctx):
                self.on_probe(ctx, self.label)

        env = vc.env
        spark_faulty = SparkSession(
            env=env, cluster=vc.sim_cluster,
            fault_policy=Policy("start"), worker_prefix="spark",
        )
        df = spark_faulty.read.format("vertica").options(
            db=vc, table="src", numpartitions=8
        ).load()
        rows = df.collect()
        assert sorted(r[0] for r in rows) == list(range(300))


class TestViewsAndUnsegmented:
    def test_view_load_with_synthetic_ranges(self, loaded):
        vc, spark, session = loaded
        session.execute(
            "CREATE VIEW big_rows AS SELECT id, val FROM src WHERE id >= 200"
        )
        df = spark.read.format("vertica").options(
            db=vc, table="big_rows", numpartitions=8
        ).load()
        rows = df.collect()
        assert sorted(r[0] for r in rows) == list(range(200, 300))

    def test_view_pushes_down_aggregation(self, loaded):
        vc, spark, session = loaded
        session.execute(
            "CREATE VIEW stats AS SELECT COUNT(*) AS n, SUM(id) AS total FROM src"
        )
        df = spark.read.format("vertica").options(
            db=vc, table="stats", numpartitions=4
        ).load()
        assert df.collect() == [(300, sum(range(300)))]

    def test_view_join_pushdown(self, loaded):
        vc, spark, session = loaded
        session.execute("CREATE TABLE dims (id INTEGER, category VARCHAR(10))")
        session.execute(
            "INSERT INTO dims VALUES (1, 'a'), (2, 'b'), (3, 'a')"
        )
        session.execute(
            "CREATE VIEW joined AS SELECT src.id, category FROM src "
            "JOIN dims ON src.id = dims.id"
        )
        df = spark.read.format("vertica").options(
            db=vc, table="joined", numpartitions=4
        ).load()
        assert sorted(df.collect()) == [(1, "a"), (2, "b"), (3, "a")]

    def test_unsegmented_table_load(self, fabric):
        vc, spark = fabric
        session = vc.db.connect()
        session.execute("CREATE TABLE u (a INTEGER, b VARCHAR(10)) UNSEGMENTED ALL NODES")
        session.execute("INSERT INTO u VALUES " + ", ".join(f"({i}, 'x{i}')" for i in range(40)))
        df = spark.read.format("vertica").options(
            db=vc, table="u", numpartitions=8
        ).load()
        rows = df.collect()
        assert sorted(r[0] for r in rows) == list(range(40))

    def test_unsegmented_load_is_local(self, fabric):
        vc, spark = fabric
        session = vc.db.connect()
        session.execute("CREATE TABLE u (a INTEGER) UNSEGMENTED ALL NODES")
        session.execute("INSERT INTO u VALUES " + ", ".join(f"({i})" for i in range(40)))
        spark.read.format("vertica").options(db=vc, table="u", numpartitions=8).load().collect()
        assert vc.internal_bytes() == 0.0
