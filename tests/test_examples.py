"""Smoke tests: every shipped example runs end to end and reports success.

Examples are the documentation users execute first; these tests keep them
green as the library evolves.
"""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(path, run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "S2V: 500 rows loaded" in output
        assert "status SUCCESS" in output
        assert "V2S: loaded 500 rows" in output

    def test_ml_pipeline(self):
        output = run_example("ml_pipeline.py")
        assert "600 training rows" in output
        assert "deployed models: [('churn', 'RegressionModel')]" in output
        assert "max |in-DB - Spark| prediction delta" in output
        # the in-DB predictions agree with Spark to float precision
        delta = float(output.rsplit(":", 1)[1])
        assert delta < 1e-9

    def test_etl_pipeline(self):
        output = run_example("etl_pipeline.py")
        assert "transformed down to 2751 clean click rows" in output
        assert "0 rejected, status SUCCESS" in output
        assert "after append: 2752 rows" in output

    def test_fault_tolerance(self):
        output = run_example("fault_tolerance.py")
        assert output.count("exactly-once") == 2
        assert "BROKEN" not in output
        assert "IN_PROGRESS" in output
        assert "DUPLICATED (as the paper warns)" in output
        assert "All scenarios complete." in output


class TestBenchCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab4" in out

    def test_unknown_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["nonexistent"]) == 2

    def test_run_one(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["tab2", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tab02_resources" in out
        assert "[PASS]" in out
        assert (tmp_path / "tab02_resources.txt").exists()
