"""Tests for EXPLAIN plan introspection and S2V job management."""

import pytest

from repro.connector import SimVerticaCluster
from repro.connector.jobs import (
    cleanup_all_orphans,
    cleanup_job,
    find_orphaned_jobs,
    job_status,
    list_jobs,
    temp_tables_of,
)
from repro.connector.s2v import S2VWriter
from repro.sim import Environment
from repro.spark import JobFailedError, SparkSession, StructField, StructType
from repro.vertica import VerticaDatabase
from repro.vertica.errors import CatalogError


@pytest.fixture
def db():
    database = VerticaDatabase(num_nodes=4)
    session = database.connect()
    session.execute(
        "CREATE TABLE t (a INTEGER, b FLOAT) SEGMENTED BY HASH(a) ALL NODES"
    )
    session.execute("INSERT INTO t VALUES " + ", ".join(f"({i}, {i}.5)" for i in range(40)))
    return database


def plan_text(session, sql):
    return "\n".join(r[0] for r in session.execute(sql).rows)


class TestExplain:
    def test_full_scan_plan(self, db):
        session = db.connect()
        plan = plan_text(session, "EXPLAIN SELECT * FROM t")
        assert "SCAN T [segmented by HASH(A)]" in plan
        assert "segments: all (4 nodes)" in plan
        assert "estimated rows: 40" in plan
        assert "PROJECT: *" in plan

    def test_hash_range_pruning_visible(self, db):
        session = db.connect()
        table = db.catalog.table("t")
        segment = table.ring.segments[1]
        plan = plan_text(
            session,
            f"EXPLAIN SELECT a FROM t WHERE HASH(a) >= {segment.lo} "
            f"AND HASH(a) < {segment.hi}",
        )
        assert f"hash range: [{segment.lo}, {segment.hi})" in plan
        assert segment.node in plan
        assert "segments pruned" in plan

    def test_filter_and_sort_and_limit(self, db):
        session = db.connect()
        plan = plan_text(
            session,
            "EXPLAIN SELECT a FROM t WHERE b > 1.0 ORDER BY a DESC LIMIT 5",
        )
        assert "FILTER: (B > 1.0)" in plan
        assert "SORT: A DESC" in plan
        assert "LIMIT: 5" in plan

    def test_aggregate_plan(self, db):
        session = db.connect()
        plan = plan_text(session, "EXPLAIN SELECT a, COUNT(*) FROM t GROUP BY a")
        assert "AGGREGATE" in plan
        assert "group by: A" in plan

    def test_view_and_system_table_plans(self, db):
        session = db.connect()
        session.execute("CREATE VIEW v AS SELECT a FROM t")
        assert "SCAN VIEW V" in plan_text(session, "EXPLAIN SELECT * FROM v")
        assert "SYSTEM TABLE" in plan_text(
            session, "EXPLAIN SELECT * FROM v_catalog.nodes"
        )

    def test_unsegmented_plan(self, db):
        session = db.connect()
        session.execute("CREATE TABLE u (x INTEGER) UNSEGMENTED ALL NODES")
        session.execute("INSERT INTO u VALUES (1)")
        plan = plan_text(session, "EXPLAIN SELECT * FROM u")
        assert "unsegmented, local copy" in plan

    def test_explain_does_not_execute(self, db):
        session = db.connect()
        before = db.epochs.current
        session.execute("EXPLAIN SELECT COUNT(*) FROM t")
        assert db.epochs.current == before


SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])


def make_fabric():
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=4)
    return vertica, spark


def crash_a_job(vertica, spark, table="dest"):
    df = spark.create_dataframe([(i, float(i)) for i in range(40)], SCHEMA, 4)
    writer = S2VWriter(spark, "overwrite",
                       {"db": vertica, "table": table, "numpartitions": 4}, df)
    vertica.run(writer._setup())
    rdd, tasks = writer._partitioned_rdd()
    job = spark.scheduler.submit(
        [writer._make_task(rdd, i) for i in range(tasks)], writer.job_name
    )

    def crash():
        yield vertica.env.timeout(0.0)
        job.cancel("total Spark failure")

    vertica.env.process(crash())
    with pytest.raises(JobFailedError):
        vertica.env.run(job.done)
    vertica.env.run()
    return writer.job_name


class TestJobManagement:
    def test_list_jobs_empty(self):
        assert list_jobs(VerticaDatabase(num_nodes=1)) == []

    def test_successful_job_recorded_no_orphans(self):
        vertica, spark = make_fabric()
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, 1)
        df.write.format("vertica").options(
            db=vertica, table="ok", numpartitions=2
        ).mode("overwrite").save()
        jobs = list_jobs(vertica.db)
        assert len(jobs) == 1
        assert job_status(vertica.db, str(jobs[0]["JOB_NAME"])) == "SUCCESS"
        assert find_orphaned_jobs(vertica.db) == []

    def test_crashed_job_is_orphaned_and_cleanable(self):
        vertica, spark = make_fabric()
        job_name = crash_a_job(vertica, spark)
        assert job_status(vertica.db, job_name) == "IN_PROGRESS"
        assert job_name in find_orphaned_jobs(vertica.db)
        leftovers = temp_tables_of(vertica.db, job_name)
        assert leftovers  # staging/status/committer tables remain
        dropped = cleanup_job(vertica.db, job_name)
        assert sorted(dropped) == sorted(leftovers)
        assert temp_tables_of(vertica.db, job_name) == []
        assert find_orphaned_jobs(vertica.db) == []

    def test_cleanup_never_touches_target(self):
        vertica, spark = make_fabric()
        seed = vertica.db.connect()
        seed.execute("CREATE TABLE dest (id INTEGER, v FLOAT)")
        seed.execute("INSERT INTO dest VALUES (7, 7.0)")
        job_name = crash_a_job(vertica, spark)
        cleanup_job(vertica.db, job_name)
        assert seed.execute("SELECT * FROM dest").rows == [(7, 7.0)]

    def test_cleanup_refuses_finished_jobs(self):
        vertica, spark = make_fabric()
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, 1)
        df.write.format("vertica").options(
            db=vertica, table="ok", numpartitions=2
        ).mode("overwrite").save()
        job_name = str(list_jobs(vertica.db)[0]["JOB_NAME"])
        with pytest.raises(CatalogError):
            cleanup_job(vertica.db, job_name)

    def test_cleanup_unknown_job(self):
        with pytest.raises(CatalogError):
            cleanup_job(VerticaDatabase(num_nodes=1), "GHOST")

    def test_cleanup_all_orphans(self):
        vertica, spark = make_fabric()
        first = crash_a_job(vertica, spark, "d1")
        second = crash_a_job(vertica, spark, "d2")
        cleaned = cleanup_all_orphans(vertica.db)
        assert set(cleaned) == {first, second}
        assert find_orphaned_jobs(vertica.db) == []
        # A fresh save then works normally.
        df = spark.create_dataframe([(1, 1.0)], SCHEMA, 1)
        df.write.format("vertica").options(
            db=vertica, table="d1", numpartitions=2
        ).mode("overwrite").save()
        session = vertica.db.connect()
        assert session.scalar("SELECT COUNT(*) FROM d1") == 1
