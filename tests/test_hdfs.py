"""Tests for the HDFS substrate and the columnar file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avrolite import Schema
from repro.hdfs import HdfsCluster, HdfsError, read_columnar, write_columnar

NODES = [f"dn{i}" for i in range(4)]


@pytest.fixture
def fs():
    return HdfsCluster(NODES, block_size=100, replication=3)


class TestFilesystem:
    def test_write_read_round_trip(self, fs):
        data = bytes(range(256)) * 3
        fs.write("/data/file1", data)
        assert fs.read("/data/file1") == data

    def test_block_splitting(self, fs):
        fs.write("/f", b"x" * 250)
        blocks = fs.block_locations("/f")
        assert [b.size for b in blocks] == [100, 100, 50]
        assert fs.total_blocks("/f") == 3
        assert fs.file_size("/f") == 250

    def test_empty_file_has_one_block(self, fs):
        fs.write("/empty", b"")
        assert fs.total_blocks("/empty") == 1
        assert fs.read("/empty") == b""

    def test_replication_factor(self, fs):
        fs.write("/f", b"x" * 50)
        block = fs.block_locations("/f")[0]
        assert len(block.replicas) == 3
        assert len(set(block.replicas)) == 3

    def test_replication_capped_by_cluster_size(self):
        fs = HdfsCluster(["a", "b"], replication=3)
        fs.write("/f", b"x")
        assert len(fs.block_locations("/f")[0].replicas) == 2

    def test_read_block_from_each_replica(self, fs):
        fs.write("/f", b"y" * 120)
        for block in fs.block_locations("/f"):
            payloads = {fs.read_block(block, node) for node in block.replicas}
            assert len(payloads) == 1

    def test_read_block_from_non_replica_fails(self, fs):
        fs.write("/f", b"z")
        block = fs.block_locations("/f")[0]
        outsiders = [n for n in NODES if n not in block.replicas]
        if outsiders:
            with pytest.raises(HdfsError):
                fs.read_block(block, outsiders[0])

    def test_no_overwrite_by_default(self, fs):
        fs.write("/f", b"1")
        with pytest.raises(HdfsError):
            fs.write("/f", b"2")
        fs.write("/f", b"2", overwrite=True)
        assert fs.read("/f") == b"2"

    def test_delete_frees_blocks(self, fs):
        fs.write("/f", b"x" * 300)
        ids = [b.block_id for b in fs.block_locations("/f")]
        fs.delete("/f")
        assert not fs.exists("/f")
        for store in fs._stores.values():
            for block_id in ids:
                assert block_id not in store

    def test_list_prefix(self, fs):
        fs.write("/a/1", b"x")
        fs.write("/a/2", b"x")
        fs.write("/b/1", b"x")
        assert fs.list("/a/") == ["/a/1", "/a/2"]

    def test_missing_file_errors(self, fs):
        with pytest.raises(HdfsError):
            fs.read("/nope")
        with pytest.raises(HdfsError):
            fs.delete("/nope")

    def test_invalid_config(self):
        with pytest.raises(HdfsError):
            HdfsCluster([])
        with pytest.raises(HdfsError):
            HdfsCluster(["a"], block_size=0)

    @given(st.binary(max_size=1000))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, data):
        fs = HdfsCluster(NODES, block_size=64)
        fs.write("/f", data)
        assert fs.read("/f") == data


ROW_SCHEMA = Schema.record(
    "row",
    [
        ("id", Schema.primitive("long")),
        ("score", Schema.primitive("double", nullable=True)),
        ("label", Schema.primitive("string", nullable=True)),
    ],
)


class TestColumnar:
    def test_round_trip(self):
        rows = [(i, float(i) / 3, f"row{i}" if i % 3 else None) for i in range(500)]
        data = write_columnar(ROW_SCHEMA, rows)
        schema, decoded = read_columnar(data)
        assert schema == ROW_SCHEMA
        assert decoded == rows

    def test_empty(self):
        data = write_columnar(ROW_SCHEMA, [])
        __, rows = read_columnar(data)
        assert rows == []

    def test_bad_magic(self):
        from repro.avrolite import SchemaError

        with pytest.raises(SchemaError):
            read_columnar(b"XXXX" + b"\x00" * 10)

    def test_requires_record_schema(self):
        from repro.avrolite import SchemaError

        with pytest.raises(SchemaError):
            write_columnar(Schema.primitive("long"), [])

    def test_columnar_compresses_repetitive_data(self):
        rows = [(i, 1.0, "constant") for i in range(5000)]
        data = write_columnar(ROW_SCHEMA, rows)
        raw_estimate = 5000 * (8 + 8 + 8)
        assert len(data) < raw_estimate / 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
                st.one_of(st.none(), st.text(max_size=20)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, rows):
        data = write_columnar(ROW_SCHEMA, rows)
        __, decoded = read_columnar(data)
        assert decoded == rows
