"""Tests for the HDFS substrate and the columnar file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avrolite import Schema, SchemaError
from repro.hdfs import (
    HdfsCluster,
    HdfsError,
    read_columnar,
    read_columnar_concat,
    write_columnar,
)

NODES = [f"dn{i}" for i in range(4)]


@pytest.fixture
def fs():
    return HdfsCluster(NODES, block_size=100, replication=3)


class TestFilesystem:
    def test_write_read_round_trip(self, fs):
        data = bytes(range(256)) * 3
        fs.write("/data/file1", data)
        assert fs.read("/data/file1") == data

    def test_block_splitting(self, fs):
        fs.write("/f", b"x" * 250)
        blocks = fs.block_locations("/f")
        assert [b.size for b in blocks] == [100, 100, 50]
        assert fs.total_blocks("/f") == 3
        assert fs.file_size("/f") == 250

    def test_empty_file_has_one_block(self, fs):
        fs.write("/empty", b"")
        assert fs.total_blocks("/empty") == 1
        assert fs.read("/empty") == b""

    def test_replication_factor(self, fs):
        fs.write("/f", b"x" * 50)
        block = fs.block_locations("/f")[0]
        assert len(block.replicas) == 3
        assert len(set(block.replicas)) == 3

    def test_replication_capped_by_cluster_size(self):
        fs = HdfsCluster(["a", "b"], replication=3)
        fs.write("/f", b"x")
        assert len(fs.block_locations("/f")[0].replicas) == 2

    def test_read_block_from_each_replica(self, fs):
        fs.write("/f", b"y" * 120)
        for block in fs.block_locations("/f"):
            payloads = {fs.read_block(block, node) for node in block.replicas}
            assert len(payloads) == 1

    def test_read_block_from_non_replica_fails(self, fs):
        fs.write("/f", b"z")
        block = fs.block_locations("/f")[0]
        outsiders = [n for n in NODES if n not in block.replicas]
        if outsiders:
            with pytest.raises(HdfsError):
                fs.read_block(block, outsiders[0])

    def test_no_overwrite_by_default(self, fs):
        fs.write("/f", b"1")
        with pytest.raises(HdfsError):
            fs.write("/f", b"2")
        fs.write("/f", b"2", overwrite=True)
        assert fs.read("/f") == b"2"

    def test_delete_frees_blocks(self, fs):
        fs.write("/f", b"x" * 300)
        ids = [b.block_id for b in fs.block_locations("/f")]
        fs.delete("/f")
        assert not fs.exists("/f")
        for store in fs._stores.values():
            for block_id in ids:
                assert block_id not in store

    def test_overwrite_frees_old_blocks(self, fs):
        # regression: overwrite used to re-place new blocks while the old
        # file's replica bytes stayed resident on the datanodes forever
        fs.write("/f", b"x" * 350)
        old_ids = {b.block_id for b in fs.block_locations("/f")}
        fs.write("/f", b"y" * 120, overwrite=True)
        for store in fs._stores.values():
            assert not old_ids & set(store)
        assert fs.read("/f") == b"y" * 120
        assert fs.orphaned_blocks() == {}

    def test_orphaned_blocks_audit_detects_leaks(self, fs):
        fs.write("/f", b"x" * 50)
        block = fs.block_locations("/f")[0]
        # simulate a buggy deletion that forgets the store bytes
        fs._names.pop("/f")
        orphans = fs.orphaned_blocks()
        assert orphans
        assert all(block.block_id in ids for ids in orphans.values())

    def test_read_block_down_node_error_names_candidates(self, fs):
        fs.write("/f", b"x" * 50)
        block = fs.block_locations("/f")[0]
        victim = block.replicas[0]
        fs.fail_node(victim)
        with pytest.raises(HdfsError) as err:
            fs.read_block(block, victim)
        message = str(err.value)
        assert victim in message and "DOWN" in message
        for replica in block.replicas:
            assert replica in message
        fs.recover_node(victim)
        assert fs.read_block(block, victim) == b"x" * 50

    def test_read_block_non_replica_error_names_candidates(self, fs):
        fs.write("/f", b"z")
        block = fs.block_locations("/f")[0]
        outsiders = [n for n in NODES if n not in block.replicas]
        if not outsiders:
            pytest.skip("replication covers every node")
        with pytest.raises(HdfsError) as err:
            fs.read_block(block, outsiders[0])
        message = str(err.value)
        assert outsiders[0] in message
        for replica in block.replicas:
            assert replica in message

    def test_read_block_all_replicas_down(self, fs):
        fs.write("/f", b"q" * 10)
        block = fs.block_locations("/f")[0]
        for replica in block.replicas:
            fs.fail_node(replica)
        with pytest.raises(HdfsError, match="no live"):
            fs.read_block(block)
        with pytest.raises(HdfsError):
            fs.read("/f")

    def test_missing_path_metadata_errors(self, fs):
        with pytest.raises(HdfsError):
            fs.file_size("/nope")
        with pytest.raises(HdfsError):
            fs.block_locations("/nope")
        with pytest.raises(HdfsError):
            fs.total_blocks("/nope")

    def test_list_prefix(self, fs):
        fs.write("/a/1", b"x")
        fs.write("/a/2", b"x")
        fs.write("/b/1", b"x")
        assert fs.list("/a/") == ["/a/1", "/a/2"]

    def test_missing_file_errors(self, fs):
        with pytest.raises(HdfsError):
            fs.read("/nope")
        with pytest.raises(HdfsError):
            fs.delete("/nope")

    def test_invalid_config(self):
        with pytest.raises(HdfsError):
            HdfsCluster([])
        with pytest.raises(HdfsError):
            HdfsCluster(["a"], block_size=0)

    @given(st.binary(max_size=1000))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, data):
        fs = HdfsCluster(NODES, block_size=64)
        fs.write("/f", data)
        assert fs.read("/f") == data


ROW_SCHEMA = Schema.record(
    "row",
    [
        ("id", Schema.primitive("long")),
        ("score", Schema.primitive("double", nullable=True)),
        ("label", Schema.primitive("string", nullable=True)),
    ],
)


class TestColumnar:
    def test_round_trip(self):
        rows = [(i, float(i) / 3, f"row{i}" if i % 3 else None) for i in range(500)]
        data = write_columnar(ROW_SCHEMA, rows)
        schema, decoded = read_columnar(data)
        assert schema == ROW_SCHEMA
        assert decoded == rows

    def test_empty(self):
        data = write_columnar(ROW_SCHEMA, [])
        __, rows = read_columnar(data)
        assert rows == []

    def test_bad_magic(self):
        from repro.avrolite import SchemaError

        with pytest.raises(SchemaError):
            read_columnar(b"XXXX" + b"\x00" * 10)

    def test_requires_record_schema(self):
        from repro.avrolite import SchemaError

        with pytest.raises(SchemaError):
            write_columnar(Schema.primitive("long"), [])

    def test_columnar_compresses_repetitive_data(self):
        rows = [(i, 1.0, "constant") for i in range(5000)]
        data = write_columnar(ROW_SCHEMA, rows)
        raw_estimate = 5000 * (8 + 8 + 8)
        assert len(data) < raw_estimate / 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
                st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
                st.one_of(st.none(), st.text(max_size=20)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, rows):
        data = write_columnar(ROW_SCHEMA, rows)
        __, decoded = read_columnar(data)
        assert decoded == rows

    def test_null_only_rows_round_trip(self):
        # regression: an all-NULL column chunk must decode back to Nones,
        # not collapse into a zero-row file
        rows = [(i, None, None) for i in range(10)]
        data = write_columnar(ROW_SCHEMA, rows)
        __, decoded = read_columnar(data)
        assert decoded == rows

    def test_int64_bounds_round_trip(self):
        rows = [(-(2**63), None, "min"), (2**63 - 1, None, "max")]
        data = write_columnar(ROW_SCHEMA, rows)
        __, decoded = read_columnar(data)
        assert decoded == rows

    def test_int64_out_of_range_rejected(self):
        # regression: values past 64 bits used to silently wrap on the
        # zig-zag wire and decode as a different number
        for value in (2**63, -(2**63) - 1):
            with pytest.raises(SchemaError, match="64-bit"):
                write_columnar(ROW_SCHEMA, [(value, None, None)])


class TestColumnarConcat:
    def test_reads_every_frame(self):
        first = [(i, float(i), None) for i in range(5)]
        second = [(i, None, f"r{i}") for i in range(5, 9)]
        payload = write_columnar(ROW_SCHEMA, first) + write_columnar(
            ROW_SCHEMA, second
        )
        schema, rows = read_columnar_concat(payload)
        assert schema == ROW_SCHEMA
        assert rows == first + second
        # a plain read_columnar would silently stop after frame one
        __, only_first = read_columnar(payload)
        assert only_first == first

    def test_single_frame_matches_read_columnar(self):
        rows = [(1, 2.0, "a"), (2, None, None)]
        payload = write_columnar(ROW_SCHEMA, rows)
        assert read_columnar_concat(payload) == read_columnar(payload)

    def test_zero_row_frames_concatenate(self):
        payload = write_columnar(ROW_SCHEMA, []) * 3
        __, rows = read_columnar_concat(payload)
        assert rows == []

    def test_mismatched_schemas_rejected(self):
        other = Schema.record("row", [("id", Schema.primitive("long"))])
        payload = write_columnar(ROW_SCHEMA, [(1, None, None)]) + write_columnar(
            other, [(2,)]
        )
        with pytest.raises(SchemaError, match="disagree"):
            read_columnar_concat(payload)

    def test_empty_payload_rejected(self):
        with pytest.raises(SchemaError, match="no frames"):
            read_columnar_concat(b"")
