"""Cross-module integration tests: the whole fabric, end to end."""

import pytest

import repro.baselines  # noqa: F401 - registers jdbc/hdfs sources
from repro.baselines.hdfs_source import SimHdfsCluster
from repro.connector import (
    SimVerticaCluster,
    deploy_pmml_model,
    install_pmml_udx,
)
from repro.connector.defaultsource import DefaultSource
from repro.sim import Environment
from repro.spark import (
    GreaterThan,
    SparkSession,
    StructField,
    StructType,
)
from repro.spark.mllib import LabeledPoint, train_linear_regression


@pytest.fixture
def fabric():
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=8)
    return vertica, spark


SCHEMA = StructType(
    [
        StructField("id", "long"),
        StructField("score", "double"),
        StructField("tag", "string"),
    ]
)


def make_rows(n):
    return [(i, i * 0.25, f"tag{i % 7}") for i in range(n)]


class TestRoundTrips:
    def test_s2v_then_v2s_is_identity(self, fabric):
        vertica, spark = fabric
        rows = make_rows(500)
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=8)
        df.write.format("vertica").options(
            db=vertica, table="t", numpartitions=16
        ).mode("overwrite").save()
        back = spark.read.format("vertica").options(
            db=vertica, table="t", numpartitions=16
        ).load()
        assert sorted(back.collect()) == sorted(rows)

    def test_repeated_round_trips_preserve_data(self, fabric):
        vertica, spark = fabric
        rows = make_rows(120)
        current = rows
        for round_number in range(3):
            df = spark.create_dataframe(current, SCHEMA, num_partitions=4)
            df.write.format("vertica").options(
                db=vertica, table=f"round{round_number}", numpartitions=8
            ).mode("overwrite").save()
            current = sorted(
                spark.read.format("vertica").options(
                    db=vertica, table=f"round{round_number}", numpartitions=8
                ).load().collect()
            )
        assert current == sorted(rows)

    def test_hdfs_to_spark_to_vertica_etl(self, fabric):
        vertica, spark = fabric
        hdfs = SimHdfsCluster(vertica.env, vertica.sim_cluster, num_nodes=4,
                              block_size=8192)
        raw = spark.create_dataframe(make_rows(300), SCHEMA, num_partitions=4)
        raw.write.format("hdfs").options(fs=hdfs, path="/in").save()
        landed = spark.read.format("hdfs").options(fs=hdfs, path="/in").load()
        transformed_rows = [
            (i, s * 2, t.upper()) for i, s, t in landed.collect() if i % 2 == 0
        ]
        out = spark.create_dataframe(transformed_rows, SCHEMA, num_partitions=4)
        out.write.format("vertica").options(
            db=vertica, table="etl", numpartitions=8
        ).mode("overwrite").save()
        session = vertica.db.connect()
        assert session.scalar("SELECT COUNT(*) FROM etl") == 150
        assert session.scalar("SELECT MAX(tag) FROM etl") == "TAG6"

    def test_vertica_to_spark_train_deploy_score(self, fabric):
        vertica, spark = fabric
        session = vertica.db.connect()
        session.execute("CREATE TABLE obs (x FLOAT, y FLOAT)")
        values = ", ".join(f"({i / 10}, {3.0 + 2.0 * i / 10})" for i in range(80))
        session.execute(f"INSERT INTO obs VALUES {values}")
        df = spark.read.format("vertica").options(
            db=vertica, table="obs", numpartitions=4
        ).load()
        points = [LabeledPoint(y, [x]) for x, y in df.collect()]
        model = train_linear_regression(points, names=["x"])
        assert model.intercept == pytest.approx(3.0, abs=1e-6)
        deploy_pmml_model(vertica.db, "line", model.to_pmml("line"))
        install_pmml_udx(vertica.db)
        result = session.execute(
            "SELECT x, PMMLPredict(x USING PARAMETERS model_name='line') "
            "FROM obs ORDER BY x LIMIT 3"
        )
        for x, prediction in result.rows:
            assert prediction == pytest.approx(3.0 + 2.0 * x, abs=1e-6)


class TestConsistencyAcrossSystems:
    def test_pushdown_equals_spark_side_filter(self, fabric):
        vertica, spark = fabric
        rows = make_rows(400)
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=8)
        df.write.format("vertica").options(
            db=vertica, table="t", numpartitions=8
        ).mode("overwrite").save()
        loaded = spark.read.format("vertica").options(
            db=vertica, table="t", numpartitions=8
        ).load()
        pushed = sorted(loaded.filter(GreaterThan("SCORE", 50.0)).collect())
        local = sorted(r for r in rows if r[1] > 50.0)
        assert pushed == local

    def test_count_pushdown_equals_collect_length(self, fabric):
        vertica, spark = fabric
        df = spark.create_dataframe(make_rows(333), SCHEMA, num_partitions=8)
        df.write.format("vertica").options(
            db=vertica, table="t", numpartitions=8
        ).mode("overwrite").save()
        loaded = spark.read.format("vertica").options(
            db=vertica, table="t", numpartitions=8
        ).load()
        assert loaded.count() == len(loaded.collect()) == 333

    def test_sql_aggregate_matches_spark_aggregate(self, fabric):
        vertica, spark = fabric
        rows = make_rows(250)
        df = spark.create_dataframe(rows, SCHEMA, num_partitions=8)
        df.write.format("vertica").options(
            db=vertica, table="t", numpartitions=8
        ).mode("overwrite").save()
        session = vertica.db.connect()
        sql_sum = session.scalar("SELECT SUM(score) FROM t")
        spark_sum = sum(r[1] for r in rows)
        assert sql_sum == pytest.approx(spark_sum)

    def test_epoch_snapshot_isolated_from_etl(self, fabric):
        """A long-running analytical load sees none of a concurrent ETL."""
        vertica, spark = fabric
        df = spark.create_dataframe(make_rows(100), SCHEMA, num_partitions=4)
        df.write.format("vertica").options(
            db=vertica, table="t", numpartitions=4
        ).mode("overwrite").save()
        from repro.connector.v2s import VerticaRelation

        relation = VerticaRelation(spark, {"db": vertica, "table": "t",
                                           "numpartitions": 4})
        scan = relation.build_scan()  # epoch pinned now
        # Concurrent ETL appends while the "job" is queued.
        more = spark.create_dataframe(make_rows(50), SCHEMA, num_partitions=2)
        more.write.format("vertica").options(
            db=vertica, table="t", numpartitions=4
        ).mode("append").save()
        assert len(scan.collect()) == 100
        fresh = spark.read.format("vertica").options(
            db=vertica, table="t", numpartitions=4
        ).load()
        assert fresh.count() == 150


class TestJobRecords:
    def test_every_save_appends_to_final_status(self, fabric):
        vertica, spark = fabric
        for i in range(3):
            df = spark.create_dataframe(make_rows(10), SCHEMA, num_partitions=2)
            df.write.format("vertica").options(
                db=vertica, table=f"t{i}", numpartitions=4
            ).mode("overwrite").save()
        session = vertica.db.connect()
        rows = session.execute(
            "SELECT status FROM S2V_JOB_STATUS"
        ).rows
        assert len(rows) == 3
        assert all(r[0] == "SUCCESS" for r in rows)

    def test_save_result_statistics(self, fabric):
        vertica, spark = fabric
        df = spark.create_dataframe(make_rows(77), SCHEMA, num_partitions=4)
        df.write.format("vertica").options(
            db=vertica, table="t", numpartitions=4
        ).mode("overwrite").save()
        result = DefaultSource.last_save_result
        assert result.rows_loaded == 77
        assert result.rows_rejected == 0
        assert result.failed_percent == 0.0
        assert result.status == "SUCCESS"
