"""Regression tests for the shared NULLS-LAST ordering helper.

PR 3 fixed "NULLs sort last in both directions" twice — once in the
engine's ORDER BY, once in ``DataFrame.order_by``.  ``repro.ordering``
is now the single home for that rule; these tests pin the helper itself
and prove both consumers (SQL and Spark) still agree on the same data.
"""

import pytest

from repro.ordering import AscendingKey, DescendingKey, null_last_key
from repro.sim import Environment
from repro.spark import SparkSession, StructField, StructType
from repro.vertica import VerticaDatabase


class TestNullLastKey:
    def test_ascending_nulls_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=null_last_key)
        assert ordered == [1, 2, 3, None, None]

    def test_descending_nulls_still_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=lambda v: null_last_key(v, True))
        assert ordered == [3, 2, 1, None, None]

    def test_sort_is_stable_for_equal_keys(self):
        pairs = [(2, "a"), (1, "b"), (2, "c"), (1, "d")]
        ordered = sorted(pairs, key=lambda p: null_last_key(p[0]))
        assert ordered == [(1, "b"), (1, "d"), (2, "a"), (2, "c")]

    def test_heterogeneous_values_fall_back_to_str(self):
        # int vs str cannot compare in Python; the key falls back to the
        # string forms instead of raising mid-sort.
        assert AscendingKey(1) < AscendingKey("2")
        assert DescendingKey("2") < DescendingKey(1)
        ordered = sorted([10, "2", 1], key=null_last_key)
        assert ordered == [1, 10, "2"]  # "1" < "10" < "2"

    def test_none_never_compares_less(self):
        assert not (AscendingKey(None) < AscendingKey(1))
        assert not (AscendingKey(1) < AscendingKey(None))
        assert not (DescendingKey(None) < DescendingKey(1))

    def test_equality_is_value_equality(self):
        assert AscendingKey(5) == AscendingKey(5)
        assert AscendingKey(5) != AscendingKey(6)


DATA = [(1, 30), (2, None), (3, 10), (4, None), (5, 20)]


class TestConsumersAgree:
    """The engine's ORDER BY and DataFrame.order_by share one rule."""

    @pytest.fixture
    def sql_rows(self):
        db = VerticaDatabase(num_nodes=2)
        session = db.connect()
        session.execute(
            "CREATE TABLE t (id INTEGER, v INTEGER) "
            "SEGMENTED BY HASH(id) ALL NODES"
        )
        session.execute(
            "INSERT INTO t VALUES "
            + ", ".join(
                f"({i}, {'NULL' if v is None else v})" for i, v in DATA
            )
        )
        return session

    @pytest.fixture
    def df(self):
        spark = SparkSession(env=Environment(), num_workers=2)
        schema = StructType(
            [StructField("id", "long"), StructField("v", "long")]
        )
        return spark.create_dataframe(DATA, schema, 2)

    def test_ascending_agree(self, sql_rows, df):
        sql = sql_rows.execute("SELECT id, v FROM t ORDER BY v, id").rows
        spark = df.order_by("v", "id").collect()
        assert list(sql) == [tuple(r) for r in spark]
        assert [r[1] for r in sql] == [10, 20, 30, None, None]

    def test_descending_agree(self, sql_rows, df):
        sql = sql_rows.execute("SELECT id, v FROM t ORDER BY v DESC").rows
        spark = df.order_by("v", descending=True).collect()
        assert [r[1] for r in sql] == [30, 20, 10, None, None]
        assert [r[1] for r in spark] == [30, 20, 10, None, None]
