"""Tier-1 tests for the plan/prepared-statement cache.

Two levels under test: the *parse* cache (canonical SQL text → shared
AST, skipping the lexer/parser on repeats) and the *plan* cache
(canonical statement + catalog version + join strategy → optimized
plan, skipping bind/optimize).  Invalidation is by catalog version:
DDL and ANALYZE bump it, so a cached plan can never outlive the schema
or statistics it was optimized against.
"""

import pytest

from repro import telemetry
from repro.cache import PlanCache, canonical_sql, statement_digest, statement_shape
from repro.telemetry import MetricsRegistry
from repro.vertica import VerticaDatabase

QUERY = "SELECT grp, COUNT(*) FROM events GROUP BY grp ORDER BY grp"


@pytest.fixture
def registry():
    reg = telemetry.install(MetricsRegistry(enabled=True))
    yield reg
    telemetry.reset()


def make_db():
    db = VerticaDatabase(num_nodes=3)
    session = db.connect()
    session.execute(
        "CREATE TABLE events (id INTEGER, grp INTEGER, v FLOAT) "
        "SEGMENTED BY HASH(id) ALL NODES"
    )
    values = ", ".join(f"({i}, {i % 4}, {float(i)})" for i in range(24))
    session.execute(f"INSERT INTO events VALUES {values}")
    return db, session


class TestKeys:
    def test_canonical_ignores_whitespace_and_case(self):
        assert canonical_sql("select  id , v\nfrom T where v = 5") == canonical_sql(
            "SELECT id, v FROM t WHERE v = 5"
        )

    def test_canonical_preserves_literals(self):
        assert canonical_sql("SELECT * FROM t WHERE id = 5") != canonical_sql(
            "SELECT * FROM t WHERE id = 6"
        )

    def test_shape_groups_literal_variants(self):
        assert statement_shape("SELECT * FROM t WHERE id = 5") == statement_shape(
            "SELECT * FROM t WHERE id = 99"
        )

    def test_digest_is_stable_and_short(self):
        canonical = canonical_sql(QUERY)
        assert statement_digest(canonical) == statement_digest(canonical)
        assert len(statement_digest(canonical)) == 16


class TestParseCache:
    def test_repeat_skips_the_parser(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        hits_before = registry.counter("vertica.cache.plan.parse_hits").value
        session.execute(QUERY)
        assert registry.counter("vertica.cache.plan.parse_hits").value > hits_before

    def test_spelling_variants_share_one_ast(self):
        db, session = make_db()
        parsed_before = db.plan_cache.parsed_count
        session.execute(QUERY)
        session.execute("select GRP, count(*) from events group by grp order by grp")
        assert db.plan_cache.parsed_count == parsed_before + 1

    def test_literal_variants_share_one_shape(self):
        db, session = make_db()
        shapes_before = db.plan_cache.shape_count
        session.execute("SELECT COUNT(*) FROM events WHERE grp = 1")
        session.execute("SELECT COUNT(*) FROM events WHERE grp = 3")
        assert db.plan_cache.shape_count == shapes_before + 1
        assert db.plan_cache.parsed_count >= 2


class TestPlanCacheHits:
    def test_repeat_skips_bind_and_optimize(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        hits_before = registry.counter("vertica.cache.plan.hits").value
        session.execute(QUERY)
        assert registry.counter("vertica.cache.plan.hits").value > hits_before

    def test_ddl_bumps_version_and_misses(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        session.execute(QUERY)
        version = db.catalog.version
        session.execute("CREATE TABLE bystander (id INTEGER)")
        assert db.catalog.version > version
        misses_before = registry.counter("vertica.cache.plan.misses").value
        session.execute(QUERY)
        assert registry.counter("vertica.cache.plan.misses").value > misses_before

    def test_analyze_bumps_version_and_misses(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        session.execute("ANALYZE events")
        misses_before = registry.counter("vertica.cache.plan.misses").value
        session.execute(QUERY)
        assert registry.counter("vertica.cache.plan.misses").value > misses_before

    def test_join_strategy_rekeys(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        session.execute(QUERY)
        session.execute("SET JOIN_STRATEGY = 'merge'")
        misses_before = registry.counter("vertica.cache.plan.misses").value
        plans_before = db.plan_cache.plan_count
        session.execute(QUERY)
        assert registry.counter("vertica.cache.plan.misses").value > misses_before
        assert db.plan_cache.plan_count == plans_before + 1

    def test_cached_plan_answers_are_identical(self):
        db, session = make_db()
        cold = session.execute(QUERY)
        warm = session.execute(QUERY)
        assert warm.columns == cold.columns
        assert warm.rows == cold.rows


class TestPlanCacheUnit:
    def test_lru_eviction_at_capacity(self, registry):
        cache = PlanCache(capacity=2, name="test.plan")

        class Stub:
            def __init__(self, key):
                self.cache_key = key

        for n in range(3):
            cache.store_plan(Stub(f"Q{n}"), 1, "auto", object())
        assert cache.plan_count == 2
        assert cache.lookup_plan(Stub("Q0"), 1, "auto") is None
        assert cache.lookup_plan(Stub("Q2"), 1, "auto") is not None
        assert registry.counter("test.plan.evictions").value >= 1

    def test_unstamped_statement_is_never_cached(self):
        cache = PlanCache(capacity=4, name="test.plan")

        class Bare:
            pass

        assert cache.store_plan(Bare(), 1, "auto", object()) is False
        assert cache.lookup_plan(Bare(), 1, "auto") is None
        assert cache.plan_count == 0

    def test_explain_shares_the_inner_query_key(self):
        from repro.vertica.sql.parser import parse_statement

        cache = PlanCache(name="test.plan")
        plain = cache.parse(QUERY, parse_statement)
        explain = cache.parse(f"EXPLAIN {QUERY}", parse_statement)
        assert explain.query.cache_key == plain.cache_key
        assert explain.query.cache_shape == plain.cache_shape
