"""Differential proof that the plan pipeline equals the legacy interpreter.

``tests.reference_interpreter.LegacyInterpreter`` is a frozen copy of the
pre-pipeline row-at-a-time SELECT evaluator.  Every test here runs the
same statement through both and demands *byte-identical* results: the
rows in order, the column names, and every field of the
:class:`~repro.vertica.engine.CostReport` (total and per-node) — because
the JDBC simulation bridge converts those counters into simulated
network/CPU time, any drift would silently change every benchmark in the
repo.

Two layers of coverage:

- a deterministic matrix of hand-picked statements exercising each
  operator and optimizer rule (pruning, pushdown, folding, views, joins,
  system tables, epochs, error paths);
- hypothesis-generated random schemas/rows/queries (derandomized so CI
  is reproducible).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vertica import VerticaDatabase
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.sql.parser import parse_statement
from tests.reference_interpreter import LegacyInterpreter

COST_FIELDS = [
    "rows_scanned",
    "node_rows_scanned",
    "rows_aggregated",
    "node_rows_aggregated",
    "rows_output",
    "node_rows_output",
    "bytes_output",
    "node_output_bytes",
    "rows_written",
    "node_rows_written",
]


def run_select(runner, db, sql, initiator):
    """Run one SELECT; returns ("ok", result) or ("err", type, message)."""
    statement = parse_statement(sql)
    assert isinstance(statement, ast.Select), sql
    txn = db.begin()
    try:
        return "ok", runner(statement, txn, initiator)
    except Exception as error:  # noqa: BLE001 - compared structurally
        return "err", type(error).__name__, str(error)


def assert_identical(db, sql, initiator=None):
    initiator = initiator or db.node_names[0]
    legacy = LegacyInterpreter(db)
    expected = run_select(legacy.select, db, sql, initiator)
    actual = run_select(db.engine.select, db, sql, initiator)
    if expected[0] == "err":
        assert actual == expected, f"{sql}: pipeline diverged on error"
        return
    assert actual[0] == "ok", f"{sql}: pipeline raised {actual[1:]}"
    want, got = expected[1], actual[1]
    assert got.columns == want.columns, sql
    assert got.rows == want.rows, sql
    for field in COST_FIELDS:
        assert getattr(got.cost, field) == getattr(want.cost, field), (
            f"{sql}: cost.{field} diverged"
        )


@pytest.fixture(scope="module")
def db():
    database = VerticaDatabase(num_nodes=4)
    session = database.connect()
    session.execute(
        "CREATE TABLE people (id INTEGER, age INTEGER, name VARCHAR(20), "
        "score FLOAT) SEGMENTED BY HASH(id) ALL NODES"
    )
    session.execute(
        "CREATE TABLE dept (d_id INTEGER, dept VARCHAR(10)) "
        "UNSEGMENTED ALL NODES"
    )
    session.execute(
        "INSERT INTO people VALUES "
        "(1, 34, 'ann', 12.5), (2, 17, 'bob', 3.0), (3, NULL, 'cho', 88.0), "
        "(4, 51, NULL, NULL), (5, 17, 'dee', 41.5), (6, 90, 'eve', 0.5)"
    )
    session.execute(
        "INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (4, 'eng')"
    )
    session.execute("CREATE VIEW adult AS SELECT id, age FROM people WHERE age >= 18")
    # A second committed batch so AT EPOCH reads see real history.
    session.execute("INSERT INTO people VALUES (7, 28, 'fay', 7.25)")
    return database


SEGMENT_SQL = None  # filled per-db inside the test (needs ring bounds)

MATRIX = [
    "SELECT * FROM people",
    "SELECT id, name FROM people",
    "SELECT name, name FROM people",
    "SELECT id + 1, age * 2 FROM people WHERE age > 20",
    "SELECT id AS ident, score FROM people WHERE name = 'ann' OR age < 30",
    "SELECT * FROM people WHERE age IS NULL",
    "SELECT * FROM people WHERE age IS NOT NULL AND score BETWEEN 1.0 AND 60.0",
    "SELECT * FROM people WHERE name LIKE 'a%'",
    "SELECT * FROM people WHERE id IN (1, 2, 3)",
    "SELECT * FROM people WHERE NOT (age > 20)",
    "SELECT COUNT(*) FROM people",
    "SELECT COUNT(age), SUM(age), AVG(score), MIN(name), MAX(id) FROM people",
    "SELECT age, COUNT(*) FROM people GROUP BY age",
    "SELECT age, COUNT(*) AS n FROM people GROUP BY age HAVING n > 1",
    "SELECT COUNT(DISTINCT age) FROM people",
    "SELECT age, SUM(score) FROM people WHERE id > 2 GROUP BY age ORDER BY age",
    "SELECT SUM(age) FROM people WHERE id > 999",
    "SELECT * FROM people ORDER BY age",
    "SELECT * FROM people ORDER BY age DESC, id",
    "SELECT * FROM people ORDER BY name LIMIT 3",
    "SELECT id, age FROM people ORDER BY age + id DESC",
    "SELECT id FROM people LIMIT 0",
    "SELECT name FROM people WHERE age > 100",
    "SELECT 1 + 2",
    "SELECT 1 + 2 AS three, 'x'",
    "SELECT * FROM dept",
    "SELECT dept, COUNT(*) FROM dept GROUP BY dept",
    "SELECT p.name, d.dept FROM people p JOIN dept d ON p.id = d.d_id",
    "SELECT name, dept FROM people JOIN dept ON id = d_id WHERE age > 18",
    "SELECT * FROM adult",
    "SELECT * FROM adult WHERE age > 21",
    "SELECT a.age, COUNT(*) FROM adult a GROUP BY a.age",
    "SELECT * FROM v_catalog.nodes",
    "SELECT * FROM v_monitor.storage_containers",
    "AT EPOCH 1 SELECT COUNT(*) FROM people",
    "SELECT missing FROM people",
    "SELECT id, missing + 1 FROM people",
    "SELECT MIN(age) FROM people GROUP BY missing",
    "SELECT SYNTHETIC_HASH() FROM dept",
]


class TestDeterministicMatrix:
    @pytest.mark.parametrize("sql", MATRIX)
    def test_matrix_statement(self, db, sql):
        assert_identical(db, sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM people",
            "SELECT * FROM dept",
            "SELECT age, COUNT(*) FROM people GROUP BY age",
            "SELECT * FROM adult",
        ],
    )
    def test_matrix_from_other_initiator(self, db, sql):
        # Unsegmented reads and view attribution depend on the initiator.
        assert_identical(db, sql, initiator=db.node_names[2])

    def test_hash_range_pruned_query(self, db):
        table = db.catalog.table("people")
        for segment in table.ring.segments[:2]:
            assert_identical(
                db,
                f"SELECT id, name FROM people WHERE HASH(id) >= {segment.lo} "
                f"AND HASH(id) < {segment.hi}",
            )

    def test_read_your_writes_in_open_transaction(self, db):
        # Uncommitted WOS rows must be visible through the pipeline the
        # same way the legacy interpreter saw them.
        statement = parse_statement("SELECT id, name FROM people ORDER BY id")
        txn = db.begin()
        initiator = db.node_names[0]
        db.engine.insert_rows(
            "PEOPLE",
            [{"ID": 99, "AGE": 1, "NAME": "wos", "SCORE": 9.0}],
            txn,
        )
        legacy = LegacyInterpreter(db)
        want = legacy.select(parse_statement("SELECT id, name FROM people ORDER BY id"), txn, initiator)
        got = db.engine.select(statement, txn, initiator)
        assert got.rows == want.rows
        assert (99, "wos") in got.rows
        txn.abort()


# ----------------------------------------------------------- hypothesis layer
values = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))
names = st.one_of(st.none(), st.sampled_from(["ann", "bob", "cho", "dee", ""]))
rows_strategy = st.lists(
    st.tuples(values, values, names), min_size=0, max_size=25
)

OPERATORS = ["=", "<>", "<", "<=", ">", ">="]
where_strategy = st.one_of(
    st.none(),
    st.tuples(
        st.sampled_from(["A", "B"]),
        st.sampled_from(OPERATORS),
        st.integers(min_value=-50, max_value=50),
    ),
)
items_strategy = st.sampled_from([
    "*",
    "A, B",
    "B, A, C",
    "A + 1, B - A",
    "C, A",
    "COUNT(*)",
    "COUNT(A), SUM(B)",
    "B, COUNT(*), MIN(A), MAX(C)",
    "B, COUNT(DISTINCT A)",
])
order_strategy = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["A", "B", "C"]), st.booleans()),
)
limit_strategy = st.one_of(st.none(), st.integers(min_value=0, max_value=10))


def sql_literal(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value + "'"
    return str(value)


def build_random_db(rows):
    db = VerticaDatabase(num_nodes=3)
    session = db.connect()
    session.execute(
        "CREATE TABLE r (a INTEGER, b INTEGER, c VARCHAR(10)) "
        "SEGMENTED BY HASH(a) ALL NODES"
    )
    if rows:
        session.execute(
            "INSERT INTO r VALUES "
            + ", ".join(
                "(" + ", ".join(sql_literal(v) for v in row) + ")"
                for row in rows
            )
        )
    return db


def compose_sql(items, where, order, limit):
    sql = f"SELECT {items} FROM r"
    if where is not None:
        column, op, literal = where
        sql += f" WHERE {column} {op} {literal}"
    aggregated = "COUNT" in items or "SUM(" in items or "MIN(" in items
    if aggregated and items.startswith("B"):
        sql += " GROUP BY B"
    if order is not None and not aggregated:
        column, desc = order
        sql += f" ORDER BY {column}" + (" DESC" if desc else "")
    if limit is not None:
        sql += f" LIMIT {limit}"
    return sql


class TestRandomizedDifferential:
    @given(
        rows=rows_strategy,
        items=items_strategy,
        where=where_strategy,
        order=order_strategy,
        limit=limit_strategy,
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_random_query_matches_legacy(self, rows, items, where, order, limit):
        db = build_random_db(rows)
        assert_identical(db, compose_sql(items, where, order, limit))

    @given(rows=rows_strategy, bound=st.integers(min_value=-50, max_value=50))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_random_constant_folding_and_ranges(self, rows, bound):
        db = build_random_db(rows)
        # Folded arithmetic in WHERE and select list plus a hash-range
        # conjunct that tightening must read from the *pristine* WHERE.
        segment = db.catalog.table("r").ring.segments[0]
        assert_identical(
            db,
            f"SELECT A + (1 + 2), B FROM r WHERE B > {bound} - 10 "
            f"AND HASH(a) >= {segment.lo} AND HASH(a) < {segment.hi}",
        )


# ------------------------------------------------------------- join matrix
@pytest.fixture(scope="module")
def join_db():
    database = VerticaDatabase(num_nodes=4)
    session = database.connect()
    session.execute(
        "CREATE TABLE fact (k INTEGER, v FLOAT) SEGMENTED BY HASH(k) ALL NODES"
    )
    session.execute(
        "CREATE TABLE dim (k2 INTEGER, label VARCHAR(10)) "
        "SEGMENTED BY HASH(k2) ALL NODES"
    )
    session.execute(
        "CREATE TABLE lookup (lk INTEGER, note VARCHAR(10)) UNSEGMENTED ALL NODES"
    )
    session.execute(
        "CREATE TABLE empty_t (e INTEGER, w FLOAT) SEGMENTED BY HASH(e) ALL NODES"
    )
    session.execute(
        "INSERT INTO fact VALUES (1, 1.5), (1, 2.5), (2, 0.5), (3, 9.0), "
        "(NULL, 4.0), (5, NULL), (7, 7.0)"
    )
    session.execute(
        "INSERT INTO dim VALUES (1, 'one'), (2, 'two'), (2, 'dup'), "
        "(NULL, 'nil'), (4, 'four')"
    )
    session.execute("INSERT INTO lookup VALUES (1, 'a'), (3, 'b'), (NULL, 'c')")
    return database


STRATEGIES = ["auto", "hash", "merge", "nested-loop"]

JOIN_MATRIX = [
    # co-located equi join on both segmentation keys (hash under auto)
    "SELECT v, label FROM fact JOIN dim ON k = k2",
    # pushdown-below-join: one-sided conjuncts move into each scan
    "SELECT v, label FROM fact JOIN dim ON k = k2 WHERE v > 1.0 AND label <> 'dup'",
    # qualified aliases with duplicate keys on both sides
    "SELECT f.k, d.label FROM fact f JOIN dim d ON f.k = d.k2 ORDER BY f.k, d.label",
    # unsegmented right side (never co-located)
    "SELECT v, note FROM fact JOIN lookup ON k = lk",
    # empty right side / empty left side
    "SELECT v, w FROM fact JOIN empty_t ON k = e",
    "SELECT w, v FROM empty_t JOIN fact ON e = k",
    # non-equi condition: always nested loop
    "SELECT v, label FROM fact JOIN dim ON k < k2",
    # aggregates over a join
    "SELECT COUNT(*) FROM fact JOIN dim ON k = k2",
    "SELECT label, SUM(v) FROM fact JOIN dim ON k = k2 GROUP BY label ORDER BY label",
    # three-way chain through the unsegmented lookup
    "SELECT v, label, note FROM fact JOIN dim ON k = k2 JOIN lookup ON k = lk",
    # ORDER + LIMIT on top of a join
    "SELECT v, label FROM fact JOIN dim ON k = k2 ORDER BY v DESC LIMIT 2",
    # error path: FLOAT-vs-VARCHAR residual forces nested loop even when
    # forced to hash/merge — skipping pairs would also skip the error
    "SELECT v FROM fact JOIN dim ON k = k2 AND v > label",
    # error path in the WHERE above the join (pushdown must not hide it)
    "SELECT v FROM fact JOIN dim ON k = k2 WHERE v > label",
]


def assert_identical_with_strategy(db, sql, strategy):
    db.join_strategy = strategy
    try:
        assert_identical(db, sql)
    finally:
        db.join_strategy = "auto"


class TestJoinMatrix:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("sql", JOIN_MATRIX)
    def test_join_statement(self, join_db, sql, strategy):
        assert_identical_with_strategy(join_db, sql, strategy)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_join_after_analyze(self, join_db, strategy):
        # Statistics may steer the strategy/build side but never the rows.
        session = join_db.connect()
        session.execute("ANALYZE fact")
        session.execute("ANALYZE dim")
        assert_identical_with_strategy(
            join_db,
            "SELECT v, label FROM fact JOIN dim ON k = k2 WHERE v > 1.0",
            strategy,
        )


# ------------------------------------------------- randomized join layer
join_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    ),
    min_size=0,
    max_size=12,
)
join_where = st.one_of(
    st.none(),
    st.tuples(
        st.sampled_from(["A", "B", "B2"]),
        st.sampled_from(OPERATORS),
        st.integers(min_value=-50, max_value=50),
    ),
)


class TestRandomizedJoinDifferential:
    @given(
        left_rows=join_rows,
        right_rows=join_rows,
        strategy=st.sampled_from(STRATEGIES),
        where=join_where,
        analyze=st.booleans(),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_random_join_matches_legacy(
        self, left_rows, right_rows, strategy, where, analyze
    ):
        db = VerticaDatabase(num_nodes=3)
        session = db.connect()
        session.execute(
            "CREATE TABLE lt (a INTEGER, b INTEGER) SEGMENTED BY HASH(a) ALL NODES"
        )
        session.execute(
            "CREATE TABLE rt (a2 INTEGER, b2 INTEGER) "
            "SEGMENTED BY HASH(a2) ALL NODES"
        )
        for name, rows in (("lt", left_rows), ("rt", right_rows)):
            if rows:
                session.execute(
                    f"INSERT INTO {name} VALUES "
                    + ", ".join(
                        "(" + ", ".join(sql_literal(v) for v in row) + ")"
                        for row in rows
                    )
                )
        if analyze:
            session.execute("ANALYZE lt")
            session.execute("ANALYZE rt")
        sql = "SELECT b, b2 FROM lt JOIN rt ON a = a2"
        if where is not None:
            column, op, literal = where
            sql += f" WHERE {column} {op} {literal}"
        assert_identical_with_strategy(db, sql, strategy)
