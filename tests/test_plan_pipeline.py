"""Tests for the layered plan pipeline: binder, optimizer, EXPLAIN, PROFILE.

The differential suite (``test_plan_differential``) proves the pipeline's
*answers* equal the legacy interpreter's; this file tests the pipeline's
own surface — the logical tree the binder builds, which optimizer rules
fire, what EXPLAIN/PROFILE render, how per-operator stats reconcile with
the CostReport, and the ``ResultSet.scalar()`` error contract.
"""

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry
from repro.vertica import VerticaDatabase
from repro.vertica.engine import ResultSet
from repro.vertica.errors import SqlError, VerticaError
from repro.vertica.plan import bind_select, optimize
from repro.vertica.plan import logical
from repro.vertica.plan.optimizer import (
    RULE_CONSTANT_FOLDING,
    RULE_HASH_RANGE,
    RULE_JOIN_STRATEGY,
    RULE_PREDICATE_PUSHDOWN,
    RULE_PROJECTION_PRUNING,
    fold_expression,
)
from repro.vertica.sql.parser import parse_statement


@pytest.fixture
def db():
    database = VerticaDatabase(num_nodes=4)
    session = database.connect()
    session.execute(
        "CREATE TABLE t (a INTEGER, b FLOAT, c VARCHAR(10)) "
        "SEGMENTED BY HASH(a) ALL NODES"
    )
    session.execute(
        "INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i}.5, 'n{i % 5}')" for i in range(40)
        )
    )
    return database


def bound_plan(db, sql):
    statement = parse_statement(sql)
    return optimize(bind_select(db, statement), db)


def plan_text(session, sql):
    return "\n".join(r[0] for r in session.execute(sql).rows)


class TestBinderShape:
    def test_select_tree_shape(self, db):
        plan = bound_plan(
            db, "SELECT a FROM t WHERE b > 1.0 ORDER BY a LIMIT 5"
        )
        kinds = [type(n).__name__ for n in plan.nodes()]
        assert kinds == ["Limit", "Sort", "Project", "TableScan"]

    def test_aggregate_tree_shape(self, db):
        plan = bound_plan(db, "SELECT a, COUNT(*) FROM t GROUP BY a")
        kinds = [type(n).__name__ for n in plan.nodes()]
        assert kinds == ["Aggregate", "TableScan"]

    def test_output_columns_precede_folding(self, db):
        plan = bound_plan(db, "SELECT 1 + 2 FROM t")
        # Constant folding rewrites the expression but must not rename
        # the output column the binder derived from the original SQL.
        assert plan.output_columns == ["(1 + 2)"]
        assert RULE_CONSTANT_FOLDING in plan.rules_applied

    def test_join_is_left_deep(self, db):
        session = db.connect()
        session.execute("CREATE TABLE u (x INTEGER) UNSEGMENTED ALL NODES")
        plan = bound_plan(db, "SELECT a, x FROM t JOIN u ON a = x")
        join = next(
            n for n in plan.nodes() if isinstance(n, logical.Join)
        )
        assert isinstance(join.left, logical.TableScan)
        assert isinstance(join.right, logical.TableScan)
        assert join.right.key == "U"


class TestOptimizerRules:
    def test_predicate_pushdown_fires(self, db):
        plan = bound_plan(db, "SELECT a FROM t WHERE b > 1.0")
        assert RULE_PREDICATE_PUSHDOWN in plan.rules_applied
        scan = next(n for n in plan.nodes() if isinstance(n, logical.TableScan))
        assert scan.predicate is not None
        # The Filter node collapsed into the scan.
        assert not any(isinstance(n, logical.Filter) for n in plan.nodes())

    def test_projection_pruning_fires(self, db):
        plan = bound_plan(db, "SELECT a FROM t WHERE b > 1.0")
        assert RULE_PROJECTION_PRUNING in plan.rules_applied
        scan = next(n for n in plan.nodes() if isinstance(n, logical.TableScan))
        assert scan.columns == ["A", "B"]

    def test_star_disables_pruning(self, db):
        plan = bound_plan(db, "SELECT * FROM t WHERE b > 1.0")
        assert RULE_PROJECTION_PRUNING not in plan.rules_applied

    def test_synthetic_hash_disables_pruning(self, db):
        plan = bound_plan(db, "SELECT a FROM t WHERE SYNTHETIC_HASH() >= 0")
        assert RULE_PROJECTION_PRUNING not in plan.rules_applied

    def test_hash_range_tightening_fires(self, db):
        segment = db.catalog.table("t").ring.segments[1]
        plan = bound_plan(
            db,
            f"SELECT a FROM t WHERE HASH(a) >= {segment.lo} "
            f"AND HASH(a) < {segment.hi}",
        )
        assert RULE_HASH_RANGE in plan.rules_applied
        scan = next(n for n in plan.nodes() if isinstance(n, logical.TableScan))
        assert (scan.hash_range.lo, scan.hash_range.hi) == (
            segment.lo, segment.hi,
        )

    def test_constant_folding_preserves_errors(self, db):
        folded, changed = fold_expression(
            parse_statement("SELECT 1 / 0 FROM t").items[0].expression
        )
        # Division by zero must stay unfolded and raise at execution.
        assert not changed
        session = db.connect()
        with pytest.raises(SqlError):
            session.execute("SELECT 1 / 0 FROM t")

    def test_constant_folding_surfaces_programming_bugs(self, db):
        # "Evaluation raised, leave unfolded" applies only to the
        # engine's own SqlErrors (1/0, type-mismatched operands).  A bug
        # in an Expression — a malformed evaluate raising TypeError —
        # must propagate out of the fold, not be masked as "unfoldable".
        from repro.vertica.expr import BinaryOp, Literal

        class BrokenLiteral(Literal):
            def evaluate(self, row):
                raise TypeError("malformed evaluate")

        with pytest.raises(TypeError, match="malformed evaluate"):
            fold_expression(BinaryOp("+", Literal(1), BrokenLiteral(2)))

    def test_mixed_type_arithmetic_is_a_sql_error(self, db):
        # Adding an integer to a string is the *user's* error: it folds
        # to "leave unfolded" at plan time and raises SqlError (never a
        # raw TypeError) when a row actually evaluates it.
        folded, changed = fold_expression(
            parse_statement("SELECT 1 + 'x' FROM t").items[0].expression
        )
        assert not changed
        session = db.connect()
        with pytest.raises(SqlError, match="invalid operands"):
            session.execute("SELECT 1 + 'x' FROM t")

    def test_filter_stays_above_view(self, db):
        session = db.connect()
        session.execute("CREATE VIEW v AS SELECT a, b FROM t")
        plan = bound_plan(db, "SELECT a FROM v WHERE a > 3")
        assert any(isinstance(n, logical.Filter) for n in plan.nodes())
        assert RULE_PREDICATE_PUSHDOWN not in plan.rules_applied


class TestExplain:
    def test_explain_lists_fired_rules(self, db):
        session = db.connect()
        plan = plan_text(session, "EXPLAIN SELECT a FROM t WHERE b > 1.0")
        assert "OPTIMIZER:" in plan
        assert RULE_PREDICATE_PUSHDOWN in plan
        assert RULE_PROJECTION_PRUNING in plan

    def test_explain_shows_pushed_filter_and_pruned_columns(self, db):
        session = db.connect()
        plan = plan_text(session, "EXPLAIN SELECT a FROM t WHERE b > 1.0")
        assert "FILTER: (B > 1.0) [pushed into scan]" in plan
        assert "columns: A, B [pruned]" in plan

    def test_explain_is_indented_tree(self, db):
        session = db.connect()
        plan = session.execute(
            "EXPLAIN SELECT a FROM t ORDER BY a LIMIT 3"
        )
        lines = [r[0] for r in plan.rows]
        assert plan.columns == ["QUERY_PLAN"]
        assert lines[0].startswith("LIMIT: 3")
        assert lines[1].startswith("  SORT: A")
        assert lines[2].startswith("    PROJECT: A")


class TestProfile:
    def test_profile_runs_query_and_reports_operators(self, db):
        session = db.connect()
        report = session.execute("PROFILE SELECT a FROM t WHERE b > 1.0")
        assert report.columns == ["PROFILE"]
        assert report.query_result is not None
        assert len(report.query_result.rows) == 39  # b = 0.5 filtered out
        kinds = [kind for kind, __, __ in report.profile.operator_rows()]
        assert kinds == ["project", "scan"]

    def test_profile_rows_reconcile_with_cost(self, db):
        session = db.connect()
        report = session.execute("PROFILE SELECT a, b, c FROM t")
        cost = report.cost
        stats = {
            kind: (rows_in, rows_out)
            for kind, rows_in, rows_out in report.profile.operator_rows()
        }
        # Scan visited exactly the rows the CostReport charged, and the
        # projection emitted exactly the rows the CostReport output.
        assert stats["scan"][1] == cost.rows_scanned == 40
        assert stats["project"][1] == cost.rows_output == 40
        assert "COST: rows scanned: 40" in "\n".join(
            r[0] for r in report.rows
        )

    def test_profile_aggregate_reconciles(self, db):
        session = db.connect()
        report = session.execute(
            "PROFILE SELECT c, COUNT(*) FROM t GROUP BY c"
        )
        stats = dict(
            (kind, (rows_in, rows_out))
            for kind, rows_in, rows_out in report.profile.operator_rows()
        )
        assert stats["aggregate"][0] == report.cost.rows_aggregated == 40
        assert stats["aggregate"][1] == len(report.query_result.rows) == 5

    def test_profile_charges_like_the_query(self, db):
        session = db.connect()
        plain = session.execute("SELECT a FROM t").cost
        profiled = session.execute("PROFILE SELECT a FROM t").cost
        assert profiled.rows_scanned == plain.rows_scanned
        assert profiled.node_output_bytes == plain.node_output_bytes

    def test_plan_telemetry_counters(self, db):
        telemetry.install(MetricsRegistry(enabled=True))
        try:
            session = db.connect()
            session.execute("SELECT a FROM t")
            assert telemetry.counter("vertica.plan.scan.rows_out").value == 40.0
            assert telemetry.counter("vertica.plan.project.rows_out").value == 40.0
        finally:
            telemetry.reset()


class TestScalarContract:
    def test_scalar_on_empty_result_raises_vertica_error(self, db):
        session = db.connect()
        result = session.execute("SELECT a FROM t WHERE a > 999")
        with pytest.raises(VerticaError, match="empty result"):
            result.scalar()

    def test_scalar_on_multi_column_result_raises(self):
        result = ResultSet(["A", "B"], [(1, 2)])
        with pytest.raises(VerticaError, match="1x2"):
            result.scalar()

    def test_scalar_on_multi_row_result_raises(self):
        result = ResultSet(["A"], [(1,), (2,)])
        with pytest.raises(VerticaError, match="2x1"):
            result.scalar()

    def test_scalar_never_raises_index_error(self):
        try:
            ResultSet([], []).scalar()
        except VerticaError:
            pass

    def test_scalar_happy_path(self, db):
        session = db.connect()
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 40


class TestJoinStrategies:
    @pytest.fixture
    def join_db(self, db):
        session = db.connect()
        session.execute(
            "CREATE TABLE s (a2 INTEGER, d VARCHAR(10)) "
            "SEGMENTED BY HASH(a2) ALL NODES"
        )
        session.execute(
            "INSERT INTO s VALUES "
            + ", ".join(f"({i}, 'm{i}')" for i in range(10))
        )
        return db

    def _join_stats(self, report):
        rows = {
            kind: (rows_in, rows_out)
            for kind, rows_in, rows_out in report.profile.operator_rows()
        }
        kind = next(k for k in rows if k.startswith("join"))
        return kind, rows[kind]

    def test_profile_join_counts_both_inputs(self, join_db):
        # Regression: the join operator used to charge only left-side
        # rows into rows_in; PROFILE must show left + right.
        session = join_db.connect()
        report = session.execute("PROFILE SELECT a, d FROM t JOIN s ON a = a2")
        __, (rows_in, rows_out) = self._join_stats(report)
        assert rows_in == 40 + 10
        assert rows_out == 10

    def test_profile_nested_loop_join_counts_both_inputs(self, join_db):
        join_db.join_strategy = "nested-loop"
        try:
            session = join_db.connect()
            report = session.execute(
                "PROFILE SELECT a, d FROM t JOIN s ON a = a2"
            )
        finally:
            join_db.join_strategy = "auto"
        kind, (rows_in, __) = self._join_stats(report)
        assert kind == "join"
        assert rows_in == 40 + 10

    def test_forced_merge_join_runs_merge_operator(self, join_db):
        join_db.join_strategy = "merge"
        try:
            session = join_db.connect()
            report = session.execute(
                "PROFILE SELECT a, d FROM t JOIN s ON a = a2"
            )
        finally:
            join_db.join_strategy = "auto"
        kind, (rows_in, rows_out) = self._join_stats(report)
        assert kind == "join-merge"
        assert rows_in == 50
        assert rows_out == 10

    def test_explain_colocated_hash_join_with_estimates(self, join_db):
        # Acceptance: identically segmented equi-join plans a co-located
        # hash join with estimated rows printed per operator.
        session = join_db.connect()
        session.execute("ANALYZE t")
        session.execute("ANALYZE s")
        plan = plan_text(session, "EXPLAIN SELECT a, d FROM t JOIN s ON a = a2")
        assert "[hash join, build: right, co-located]" in plan
        assert "(estimated rows:" in plan
        assert RULE_JOIN_STRATEGY in plan

    def test_profile_estimates_and_zero_shuffle_when_colocated(self, join_db):
        session = join_db.connect()
        session.execute("ANALYZE t")
        session.execute("ANALYZE s")
        report = session.execute("PROFILE SELECT a, d FROM t JOIN s ON a = a2")
        text = "\n".join(r[0] for r in report.rows)
        assert "est rows:" in text
        # Co-located join moves no build rows across nodes.
        assert "rows shuffled" not in text

    def test_profile_shuffle_nonzero_when_not_colocated(self, join_db):
        # Same ring but segmented on a non-key column: every build row
        # must reach the probe nodes it does not already live on.
        session = join_db.connect()
        session.execute(
            "CREATE TABLE s2 (a3 INTEGER, z INTEGER) "
            "SEGMENTED BY HASH(z) ALL NODES"
        )
        session.execute(
            "INSERT INTO s2 VALUES "
            + ", ".join(f"({i}, {100 - i})" for i in range(10))
        )
        report = session.execute("PROFILE SELECT a, z FROM t JOIN s2 ON a = a3")
        text = "\n".join(r[0] for r in report.rows)
        assert "hash join" in text
        assert "co-located" not in text
        assert "rows shuffled: " in text

    def test_join_strategy_option_validation(self, db):
        session = db.connect()
        session.execute("SET JOIN_STRATEGY = 'merge'")
        assert db.join_strategy == "merge"
        with pytest.raises(SqlError, match="JOIN_STRATEGY"):
            session.execute("SET JOIN_STRATEGY = 'bogus'")
        session.execute("SET JOIN_STRATEGY = 'auto'")
        assert db.join_strategy == "auto"
