"""Unit and property tests for the PMML substrate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmml import (
    ClusteringModel,
    DataField,
    ModelEvaluator,
    PmmlDocument,
    PmmlError,
    RegressionModel,
    SupportVectorMachineModel,
    parse_pmml,
    to_xml,
)

FEATURES = ["sepal_length", "sepal_width", "petal_length", "petal_width"]


def make_regression(normalization="none", function_name="regression"):
    return RegressionModel(
        FEATURES,
        [0.5, -1.25, 2.0, 0.0],
        intercept=0.75,
        function_name=function_name,
        normalization=normalization,
        model_name="regression",
    )


class TestRegressionModel:
    def test_linear_prediction(self):
        model = make_regression()
        value = model.predict([1.0, 2.0, 3.0, 4.0])
        assert value == pytest.approx(0.75 + 0.5 - 2.5 + 6.0)

    def test_logit_prediction_is_probability(self):
        model = make_regression(normalization="logit", function_name="classification")
        p = model.predict([1.0, 2.0, 3.0, 4.0])
        assert 0.0 < p < 1.0
        score = model.score([1.0, 2.0, 3.0, 4.0])
        assert p == pytest.approx(1.0 / (1.0 + math.exp(-score)))

    def test_logit_extreme_scores_stable(self):
        model = RegressionModel(["x"], [1000.0], normalization="logit",
                                function_name="classification")
        assert model.predict([1.0]) == pytest.approx(1.0)
        assert model.predict([-1.0]) == pytest.approx(0.0)

    def test_arity_mismatch(self):
        with pytest.raises(PmmlError):
            make_regression().predict([1.0, 2.0])

    def test_coefficient_count_checked(self):
        with pytest.raises(PmmlError):
            RegressionModel(FEATURES, [1.0])

    def test_bad_function_name(self):
        with pytest.raises(PmmlError):
            RegressionModel(["x"], [1.0], function_name="ranking")

    def test_non_numeric_input(self):
        with pytest.raises(PmmlError):
            make_regression().predict(["a", "b", "c", "d"])


class TestClusteringModel:
    def test_nearest_center(self):
        model = ClusteringModel(["x", "y"], [[0.0, 0.0], [10.0, 10.0]])
        assert model.predict([1.0, 1.0]) == 0.0
        assert model.predict([9.0, 9.5]) == 1.0

    def test_center_arity_checked(self):
        with pytest.raises(PmmlError):
            ClusteringModel(["x", "y"], [[1.0]])

    def test_requires_clusters(self):
        with pytest.raises(PmmlError):
            ClusteringModel(["x"], [])


class TestSvmModel:
    def test_sign_classification(self):
        model = SupportVectorMachineModel(["x", "y"], [1.0, -1.0], intercept=0.0)
        assert model.predict([2.0, 1.0]) == 1.0
        assert model.predict([1.0, 2.0]) == 0.0

    def test_margin(self):
        model = SupportVectorMachineModel(["x"], [2.0], intercept=-1.0)
        assert model.margin([3.0]) == pytest.approx(5.0)


class TestDocument:
    def test_default_data_dictionary(self):
        doc = PmmlDocument(make_regression())
        assert [f.name for f in doc.data_fields] == FEATURES

    def test_missing_dictionary_entry_rejected(self):
        with pytest.raises(PmmlError):
            PmmlDocument(make_regression(), data_fields=[DataField("other")])

    def test_model_type(self):
        assert PmmlDocument(make_regression()).model_type == "RegressionModel"


class TestXmlRoundTrip:
    def test_regression_round_trip(self):
        doc = PmmlDocument(make_regression(), description="iris model")
        parsed = parse_pmml(to_xml(doc))
        assert parsed.model_type == "RegressionModel"
        assert parsed.feature_names == FEATURES
        assert parsed.description == "iris model"
        for vector in ([1.0, 2.0, 3.0, 4.0], [0.0, 0.0, 0.0, 0.0]):
            assert parsed.predict(vector) == pytest.approx(doc.predict(vector))

    def test_logistic_round_trip(self):
        doc = PmmlDocument(
            make_regression(normalization="logit", function_name="classification")
        )
        parsed = parse_pmml(to_xml(doc))
        assert parsed.model.normalization == "logit"
        assert parsed.predict([1, 1, 1, 1]) == pytest.approx(doc.predict([1, 1, 1, 1]))

    def test_clustering_round_trip(self):
        doc = PmmlDocument(
            ClusteringModel(["x", "y"], [[0.5, -0.5], [3.0, 4.0], [-2.0, 1.0]])
        )
        parsed = parse_pmml(to_xml(doc))
        assert parsed.model_type == "ClusteringModel"
        assert parsed.model.centers == doc.model.centers
        assert parsed.predict([3.1, 3.9]) == 1.0

    def test_svm_round_trip(self):
        doc = PmmlDocument(
            SupportVectorMachineModel(["a", "b"], [0.25, -0.75], intercept=0.1)
        )
        parsed = parse_pmml(to_xml(doc))
        assert parsed.model_type == "SupportVectorMachineModel"
        assert parsed.predict([1.0, 0.0]) == doc.predict([1.0, 0.0])

    def test_parse_garbage(self):
        with pytest.raises(PmmlError):
            parse_pmml("this is not xml <<<")

    def test_parse_wrong_root(self):
        with pytest.raises(PmmlError):
            parse_pmml("<NotPMML/>")

    def test_parse_no_model(self):
        with pytest.raises(PmmlError):
            parse_pmml(
                "<PMML version='4.1'><DataDictionary numberOfFields='0'/></PMML>"
            )

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_regression_round_trip(self, coefficients, intercept):
        names = [f"f{i}" for i in range(len(coefficients))]
        doc = PmmlDocument(RegressionModel(names, coefficients, intercept=intercept))
        parsed = parse_pmml(to_xml(doc))
        vector = [0.5] * len(coefficients)
        assert parsed.predict(vector) == pytest.approx(doc.predict(vector))


class TestEvaluator:
    def test_from_xml_and_batch(self):
        doc = PmmlDocument(make_regression())
        evaluator = ModelEvaluator.from_xml(to_xml(doc))
        assert evaluator.model_type == "RegressionModel"
        batch = [[1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0]]
        assert evaluator.evaluate_batch(batch) == [
            pytest.approx(doc.predict(batch[0])),
            pytest.approx(doc.predict(batch[1])),
        ]

    def test_evaluate_named(self):
        doc = PmmlDocument(make_regression())
        evaluator = ModelEvaluator(doc)
        row = dict(zip(FEATURES, [1.0, 2.0, 3.0, 4.0]))
        assert evaluator.evaluate_named(row) == pytest.approx(
            doc.predict([1.0, 2.0, 3.0, 4.0])
        )

    def test_evaluate_named_missing_feature(self):
        evaluator = ModelEvaluator(PmmlDocument(make_regression()))
        with pytest.raises(PmmlError):
            evaluator.evaluate_named({"sepal_length": 1.0})
