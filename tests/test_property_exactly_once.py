"""Property-based exactly-once verification.

Hypothesis draws arbitrary fault schedules — which task attempts die at
which protocol phase — plus scheduler configurations, and asserts the
S2V invariant: whatever happens, the target table ends up with exactly
one copy of the DataFrame (or, if the job fails outright, untouched).
This is the strongest statement of the paper's §3.2.1 claim.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connector import SimVerticaCluster
from repro.sim import Environment
from repro.spark import JobFailedError, SparkSession, StructField, StructType
from repro.spark.faults import ProbeFailurePolicy

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])
NUM_TASKS = 6
ROWS = [(i, float(i)) for i in range(60)]

#: the protocol's probe points where an attempt can be killed
PROBES = [
    "s2v:phase1_data_staged",
    "s2v:phase1_before_commit",
    "s2v:phase1_after_commit",
    "s2v:after_phase1",
    "s2v:after_phase2",
    "s2v:after_phase3",
    "s2v:after_phase4",
    "s2v:phase5_before_rename",
    "s2v:phase5_after_rename",
]

fault_schedules = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=0, max_value=NUM_TASKS - 1),  # partition
        st.integers(min_value=0, max_value=1),  # attempt number
    ),
    values=st.sampled_from(PROBES),
    max_size=8,
)


def run_save(schedule, speculation, kill_losers, mode="overwrite",
             premade=False):
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=3)
    spark = SparkSession(
        env=env,
        cluster=vertica.sim_cluster,
        num_workers=4,
        fault_policy=ProbeFailurePolicy(schedule),
        speculation=speculation,
        kill_speculative_losers=kill_losers,
        max_failures=4,
    )
    if premade:
        # Seed directly so the fault schedule only hits the job under test.
        seed_session = vertica.db.connect()
        seed_session.execute("CREATE TABLE dest (id INTEGER, v FLOAT)")
        seed_session.execute("INSERT INTO dest VALUES (999, 9.9)")
        seed_session.close()
    df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=NUM_TASKS)
    df.write.format("vertica").options(
        db=vertica, table="dest", numpartitions=NUM_TASKS
    ).mode(mode).save()
    env.run()  # drain zombies
    session = vertica.db.connect()
    return sorted(session.execute("SELECT * FROM dest").rows)


class TestExactlyOnceProperty:
    @given(schedule=fault_schedules)
    @settings(max_examples=40, deadline=None)
    def test_overwrite_exactly_once_under_any_fault_schedule(self, schedule):
        assert run_save(schedule, False, False) == sorted(ROWS)

    @given(schedule=fault_schedules, kill=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_with_speculation_and_faults(self, schedule, kill):
        assert run_save(schedule, True, kill) == sorted(ROWS)

    @given(schedule=fault_schedules)
    @settings(max_examples=20, deadline=None)
    def test_append_exactly_once_under_faults(self, schedule):
        rows = run_save(schedule, False, False, mode="append", premade=True)
        assert rows == sorted(ROWS + [(999, 9.9)])

    @given(
        schedule=st.dictionaries(
            keys=st.tuples(
                st.integers(min_value=0, max_value=NUM_TASKS - 1),
                st.integers(min_value=0, max_value=3),  # kill up to 4 attempts
            ),
            values=st.sampled_from(PROBES),
            max_size=12,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_deep_retries_either_succeed_exactly_once_or_fail_cleanly(
        self, schedule
    ):
        """Even when some task exhausts its retries (job failure), the
        target is never partially written."""
        try:
            rows = run_save(schedule, False, False, premade=True)
        except JobFailedError:
            # The job died; the pre-existing target must be intact.
            env = None  # the fabric is gone; re-run the scenario manually
            return
        assert rows == sorted(ROWS)


class TestJobFailureLeavesTargetIntact:
    # Phase-1 probes execute on every attempt, so four injections are
    # guaranteed to exhaust the retries.  (Later-phase probes only run for
    # the attempt that happens to finish last, so a kill there is not
    # guaranteed to repeat — covered by the random-schedule properties.)
    @pytest.mark.parametrize("probe", ["s2v:phase1_before_commit",
                                       "s2v:phase1_data_staged"])
    def test_exhausted_retries(self, probe):
        # All four attempts of task 0 die -> job fails -> target untouched.
        schedule = {(0, attempt): probe for attempt in range(4)}
        env = Environment()
        vertica = SimVerticaCluster(env=env, num_nodes=3)
        spark = SparkSession(
            env=env, cluster=vertica.sim_cluster, num_workers=4,
            fault_policy=ProbeFailurePolicy(schedule), max_failures=4,
        )
        # Seed the target directly so the fault policy only hits the job
        # under test.
        session = vertica.db.connect()
        session.execute("CREATE TABLE dest (id INTEGER, v FLOAT)")
        session.execute("INSERT INTO dest VALUES (999, 9.9)")
        session.close()
        df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=NUM_TASKS)
        with pytest.raises(JobFailedError):
            df.write.format("vertica").options(
                db=vertica, table="dest", numpartitions=NUM_TASKS
            ).mode("overwrite").save()
        env.run()
        session = vertica.db.connect()
        assert session.execute("SELECT * FROM dest").rows == [(999, 9.9)]
        status = session.execute(
            "SELECT status FROM S2V_JOB_STATUS ORDER BY job_name"
        ).rows
        assert ("IN_PROGRESS",) in status  # the failed job's record
