"""Tier-1 tests for the epoch-keyed server-side result cache.

The cache memoises SELECT answers under (canonical statement, snapshot
epoch, catalog version).  The contract under test is the differential
one: a warm execution must be byte-identical to a cold one — same
columns, same rows, same CostReport fields — and every write path
(epoch-advancing DML, version-bumping DDL/TRUNCATE/ANALYZE, staged
transaction state) must invalidate or bypass before a stale answer can
escape.  A final hypothesis matrix interleaves reads with random
DML/DDL/ANALYZE and compares a caching session against a cache-off
session statement by statement.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cache import ResultCache
from repro.sim import Environment
from repro.telemetry import MetricsRegistry
from repro.vertica import VerticaDatabase
from repro.vertica.errors import SqlError
from repro.wlm import AdmissionController, ResourcePool

# Identical to the plan-differential matrix: any drift in these fields
# would silently change every benchmark via the JDBC cost bridge.
COST_FIELDS = [
    "rows_scanned",
    "node_rows_scanned",
    "rows_aggregated",
    "node_rows_aggregated",
    "rows_output",
    "node_rows_output",
    "bytes_output",
    "node_output_bytes",
    "rows_written",
    "node_rows_written",
]

QUERY = "SELECT grp, COUNT(*), SUM(v) FROM metrics GROUP BY grp ORDER BY grp"


@pytest.fixture
def registry():
    reg = telemetry.install(MetricsRegistry(enabled=True))
    yield reg
    telemetry.reset()


def make_db(num_nodes=3, rows=40):
    db = VerticaDatabase(num_nodes=num_nodes)
    db.result_cache_default = True
    session = db.connect()
    session.execute(
        "CREATE TABLE metrics (id INTEGER, grp INTEGER, v FLOAT) "
        "SEGMENTED BY HASH(id) ALL NODES"
    )
    values = ", ".join(f"({i}, {i % 5}, {float(i % 7)})" for i in range(rows))
    session.execute(f"INSERT INTO metrics VALUES {values}")
    return db, session


def assert_same_result(warm, cold):
    assert warm.columns == cold.columns
    assert warm.rows == cold.rows
    for field in COST_FIELDS:
        assert getattr(warm.cost, field) == getattr(cold.cost, field), field


class TestHitPath:
    def test_warm_execution_identical_to_cold(self):
        db, session = make_db()
        cold = session.execute(QUERY)
        assert cold.cost.cache_hit is False
        warm = session.execute(QUERY)
        assert warm.cost.cache_hit is True
        assert_same_result(warm, cold)
        assert warm.snapshot_epoch == cold.snapshot_epoch

    def test_spelling_variants_share_one_entry(self):
        db, session = make_db()
        session.execute(QUERY)
        restyled = session.execute(
            "select GRP, count(*), sum(V)  from metrics group by grp order by grp"
        )
        assert restyled.cost.cache_hit is True
        assert len(db.result_cache) == 1

    def test_different_literals_are_different_entries(self):
        db, session = make_db()
        a = session.execute("SELECT COUNT(*) FROM metrics WHERE grp = 1")
        b = session.execute("SELECT COUNT(*) FROM metrics WHERE grp = 2")
        assert a.cost.cache_hit is False
        assert b.cost.cache_hit is False
        assert len(db.result_cache) == 2

    def test_hit_and_store_counters(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        session.execute(QUERY)
        counters = registry.snapshot().counters
        assert counters["vertica.cache.result.hits"] >= 1
        assert counters["vertica.cache.result.stores"] >= 1


class TestSessionToggle:
    def test_set_result_cache_off_disables(self):
        db, session = make_db()
        session.execute("SET RESULT_CACHE = 'off'")
        start = len(db.result_cache)
        session.execute(QUERY)
        second = session.execute(QUERY)
        assert second.cost.cache_hit is False
        assert len(db.result_cache) == start

    def test_set_result_cache_back_on(self):
        db, session = make_db()
        session.execute("SET RESULT_CACHE = 'off'")
        session.execute(QUERY)
        session.execute("SET RESULT_CACHE = 'on'")
        miss = session.execute(QUERY)
        assert miss.cost.cache_hit is False
        assert session.execute(QUERY).cost.cache_hit is True

    def test_invalid_value_rejected(self):
        db, session = make_db()
        with pytest.raises(SqlError):
            session.execute("SET RESULT_CACHE = 'maybe'")

    def test_database_default_off(self):
        db = VerticaDatabase(num_nodes=2)
        assert db.result_cache_default is False
        session = db.connect()
        session.execute("CREATE TABLE t (id INTEGER)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("SELECT id FROM t")
        repeat = session.execute("SELECT id FROM t")
        assert repeat.cost.cache_hit is False
        assert len(db.result_cache) == 0


class TestInvalidation:
    def test_insert_advances_epoch_and_invalidates(self):
        db, session = make_db()
        before = session.execute(QUERY)
        session.execute("INSERT INTO metrics VALUES (1000, 0, 1.0)")
        after = session.execute(QUERY)
        assert after.cost.cache_hit is False
        assert after.rows != before.rows
        assert session.execute(QUERY).cost.cache_hit is True

    def test_at_epoch_pins_the_old_answer(self):
        db, session = make_db()
        base = session.execute(QUERY)
        epoch = base.snapshot_epoch
        session.execute("INSERT INTO metrics VALUES (1000, 0, 1.0)")
        pinned = session.execute(f"AT EPOCH {epoch} {QUERY}")
        assert pinned.rows == base.rows
        again = session.execute(f"AT EPOCH {epoch} {QUERY}")
        assert again.cost.cache_hit is True
        assert again.rows == base.rows

    def test_truncate_bumps_catalog_version(self):
        # TRUNCATE discards rows without advancing an epoch — the catalog
        # version bump is the only thing keeping the old answer out.
        db, session = make_db()
        full = session.execute(QUERY)
        assert full.rows
        version = db.catalog.version
        session.execute("TRUNCATE TABLE metrics")
        assert db.catalog.version > version
        empty = session.execute(QUERY)
        assert empty.cost.cache_hit is False
        assert empty.rows == []

    def test_unrelated_ddl_invalidates(self):
        db, session = make_db()
        session.execute(QUERY)
        session.execute("CREATE TABLE bystander (id INTEGER)")
        miss = session.execute(QUERY)
        assert miss.cost.cache_hit is False
        assert session.execute(QUERY).cost.cache_hit is True

    def test_analyze_invalidates(self):
        # New statistics change plan choice without an epoch; the version
        # bump re-keys both caches.
        db, session = make_db()
        session.execute(QUERY)
        version = db.catalog.version
        session.execute("ANALYZE metrics")
        assert db.catalog.version > version
        assert session.execute(QUERY).cost.cache_hit is False


class TestBypass:
    def test_staged_transaction_writes_bypass(self, registry):
        db, session = make_db()
        entries = len(db.result_cache)
        session.execute("BEGIN")
        session.execute("INSERT INTO metrics VALUES (5000, 1, 2.0)")
        result = session.execute(QUERY)
        session.execute("ROLLBACK")
        # Read-your-writes: the staged row is visible but never cached.
        assert any(row[0] == 1 and row[1] == 9 for row in result.rows)
        assert len(db.result_cache) == entries
        counters = registry.snapshot().counters
        assert counters["vertica.cache.result.bypass.txn_writes"] >= 1

    def test_system_tables_bypass(self, registry):
        db, session = make_db()
        entries = len(db.result_cache)
        session.execute("SELECT table_name FROM V_CATALOG.TABLES")
        session.execute("SELECT table_name FROM V_CATALOG.TABLES")
        assert len(db.result_cache) == entries
        counters = registry.snapshot().counters
        assert counters["vertica.cache.result.bypass.system_table"] >= 2


class TestEviction:
    def test_lru_eviction_under_byte_pressure(self, registry):
        db, session = make_db()
        session.execute(QUERY)
        one_entry = db.result_cache.used_bytes
        assert one_entry > 0
        db.result_cache = ResultCache(budget_bytes=int(one_entry * 2.5))
        for floor in range(1, 5):
            # Same full answer each time (every grp is >= -floor), so each
            # distinct literal stores an entry the size of the first one.
            session.execute(
                f"SELECT grp, COUNT(*), SUM(v) FROM metrics "
                f"WHERE grp >= -{floor} GROUP BY grp ORDER BY grp"
            )
        cache = db.result_cache
        assert 1 <= len(cache) <= 2
        assert cache.used_bytes <= cache.budget_bytes
        counters = registry.snapshot().counters
        assert counters["vertica.cache.result.evictions"] >= 2

    def test_oversized_result_refused(self, registry):
        db, session = make_db()
        db.result_cache = ResultCache(budget_bytes=16)
        session.execute(QUERY)
        repeat = session.execute(QUERY)
        assert repeat.cost.cache_hit is False
        assert len(db.result_cache) == 0
        counters = registry.snapshot().counters
        assert counters["vertica.cache.result.rejected"] >= 2


class TestWlmAccounting:
    def test_store_charges_pool_and_clear_releases(self):
        env = Environment()
        db, session = make_db()
        wlm = AdmissionController(env, db.catalog)
        db.result_cache.attach_account(wlm.cache_account("GENERAL"))
        session.execute(QUERY)
        state = wlm.state("GENERAL")
        assert db.result_cache.reserved_mb >= 1
        assert state.cache_mb == db.result_cache.reserved_mb
        # Cache residency is not a leak: tickets were all released.
        assert wlm.leaked() == {}
        db.result_cache.clear()
        assert db.result_cache.reserved_mb == 0
        assert state.cache_mb == 0

    def test_grow_denied_when_pool_is_full(self, registry):
        env = Environment()
        db = VerticaDatabase(num_nodes=2)
        db.catalog.create_resource_pool(
            ResourcePool(
                "TINY", memory_mb=2, planned_concurrency=1, max_concurrency=1
            )
        )
        wlm = AdmissionController(env, db.catalog)
        account = wlm.cache_account("TINY")
        assert account.grow(2) is True
        assert account.grow(1) is False
        assert account.reserved_mb == 2
        account.shrink(1)
        assert account.reserved_mb == 1
        counters = registry.snapshot().counters
        assert counters["wlm.pool.TINY.cache_grow_denied"] >= 1
        account.shrink(1)
        assert wlm.leaked() == {}

    def test_store_refused_when_pool_cannot_grant(self):
        env = Environment()
        db, session = make_db()
        db.catalog.create_resource_pool(
            ResourcePool(
                "CRAMPED", memory_mb=1, planned_concurrency=1, max_concurrency=1
            )
        )
        wlm = AdmissionController(env, db.catalog)
        account = wlm.cache_account("CRAMPED")
        # Exhaust the pool so the cache's first MB grant must fail.
        filler = wlm.cache_account("CRAMPED")
        assert filler.grow(1) is True
        db.result_cache.attach_account(account)
        repeat_a = session.execute(QUERY)
        repeat_b = session.execute(QUERY)
        assert repeat_a.cost.cache_hit is False
        assert repeat_b.cost.cache_hit is False
        assert len(db.result_cache) == 0
        filler.shrink(1)


class TestExplainAndProfile:
    def test_explain_reports_miss_then_hit(self):
        db, session = make_db()
        plan = session.execute(f"EXPLAIN {QUERY}")
        assert plan.columns == ["QUERY_PLAN"]
        lines = [row[0] for row in plan.rows]
        assert any(line.startswith("RESULT CACHE: miss") for line in lines)
        # EXPLAIN itself must not populate or warm the cache.
        assert len(db.result_cache) == 0
        session.execute(QUERY)
        plan = session.execute(f"EXPLAIN {QUERY}")
        lines = [row[0] for row in plan.rows]
        assert any(line.startswith("RESULT CACHE: hit") for line in lines)

    def test_explain_silent_when_cache_off(self):
        db, session = make_db()
        session.execute("SET RESULT_CACHE = 'off'")
        plan = session.execute(f"EXPLAIN {QUERY}")
        assert not any("RESULT CACHE" in row[0] for row in plan.rows)

    def test_profile_hit_replays_cost(self):
        db, session = make_db()
        cold = session.execute(QUERY)
        report = session.execute(f"PROFILE {QUERY}")
        lines = [row[0] for row in report.rows]
        assert lines[0].startswith("RESULT CACHE: hit")
        assert report.query_result.rows == cold.rows
        assert report.cost.cache_hit is True
        for field in COST_FIELDS:
            assert getattr(report.cost, field) == getattr(cold.cost, field)


# ----------------------------------------------------------------- hypothesis
READS = (
    QUERY,
    "SELECT COUNT(*) FROM metrics WHERE grp = 2",
    "SELECT SUM(v) FROM metrics",
)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    ops=st.lists(
        st.sampled_from(
            ["read0", "read1", "read2", "insert", "analyze", "ddl", "truncate"]
        ),
        min_size=2,
        max_size=12,
    )
)
def test_random_interleavings_match_cache_off(ops):
    """Differential matrix: a caching session and a cache-off session run
    the same DML/DDL/ANALYZE interleaving and must agree on every read."""
    cached_db, cached = make_db(rows=24)
    cold_db, cold = make_db(rows=24)
    cold.execute("SET RESULT_CACHE = 'off'")
    next_id = 24
    ddl_n = 0
    for op in ops:
        if op.startswith("read"):
            sql = READS[int(op[-1])]
            a = cached.execute(sql)
            b = cold.execute(sql)
            assert_same_result(a, b)
            continue
        if op == "insert":
            sql = f"INSERT INTO metrics VALUES ({next_id}, {next_id % 5}, 1.5)"
            next_id += 1
        elif op == "analyze":
            sql = "ANALYZE metrics"
        elif op == "truncate":
            sql = "TRUNCATE TABLE metrics"
        else:
            sql = f"CREATE TABLE scratch_{ddl_n} (id INTEGER)"
            ddl_n += 1
        cached.execute(sql)
        cold.execute(sql)
    # Final sweep: every read agrees after the dust settles, twice (the
    # second pass reads through whatever the first pass populated).
    for __ in range(2):
        for sql in READS:
            assert_same_result(cached.execute(sql), cold.execute(sql))
