"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


def test_clock_starts_at_zero(env):
    assert env.now == 0.0


def test_timeout_advances_clock(env):
    def proc():
        yield env.timeout(5.0)
        return env.now

    assert env.run(env.process(proc())) == 5.0
    assert env.now == 5.0


def test_timeout_carries_value(env):
    def proc():
        value = yield env.timeout(1.0, value="payload")
        return value

    assert env.run(env.process(proc())) == "payload"


def test_negative_timeout_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate(env):
    def proc():
        yield env.timeout(1.0)
        yield env.timeout(2.5)
        return env.now

    assert env.run(env.process(proc())) == 3.5


def test_processes_interleave_by_time(env):
    order = []

    def slow():
        yield env.timeout(10)
        order.append("slow")

    def fast():
        yield env.timeout(1)
        order.append("fast")

    env.process(slow())
    env.process(fast())
    env.run()
    assert order == ["fast", "slow"]


def test_process_return_value(env):
    def child():
        yield env.timeout(2)
        return 42

    def parent():
        result = yield env.process(child())
        return result + 1

    assert env.run(env.process(parent())) == 43


def test_process_exception_propagates_to_waiter(env):
    class Boom(Exception):
        pass

    def child():
        yield env.timeout(1)
        raise Boom("bang")

    def parent():
        try:
            yield env.process(child())
        except Boom:
            return "caught"
        return "missed"

    assert env.run(env.process(parent())) == "caught"


def test_unhandled_process_failure_raises_from_run(env):
    class Boom(Exception):
        pass

    def child():
        yield env.timeout(1)
        raise Boom("bang")

    env.process(child())
    with pytest.raises(Boom):
        env.run()


def test_awaiting_failed_process_from_run(env):
    class Boom(Exception):
        pass

    def child():
        yield env.timeout(1)
        raise Boom

    proc = env.process(child())
    with pytest.raises(Boom):
        env.run(proc)


def test_run_until_time(env):
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=5)
    assert ticks == [1, 2, 3, 4, 5]
    assert env.now == 5


def test_run_until_event_returns_its_value(env):
    gate = env.event()

    def opener():
        yield env.timeout(3)
        gate.succeed("open")

    env.process(opener())
    assert env.run(gate) == "open"
    assert env.now == 3


def test_event_double_trigger_rejected(env):
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected(env):
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_interrupt_delivers_cause(env):
    caught = {}

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            caught["cause"] = exc.cause
            caught["time"] = env.now

    def killer(proc):
        yield env.timeout(7)
        proc.interrupt("too slow")

    proc = env.process(victim())
    env.process(killer(proc))
    env.run()
    assert caught == {"cause": "too slow", "time": 7}


def test_interrupt_finished_process_is_noop(env):
    def quick():
        yield env.timeout(1)

    def killer(proc):
        yield env.timeout(5)
        proc.interrupt("late")  # must not raise

    proc = env.process(quick())
    env.process(killer(proc))
    env.run()
    assert not proc.is_alive


def test_interrupted_process_can_continue(env):
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(5)
        log.append(("done", env.now))

    def killer(proc):
        yield env.timeout(10)
        proc.interrupt()

    proc = env.process(victim())
    env.process(killer(proc))
    env.run()
    assert log == [("interrupted", 10), ("done", 15)]


def test_all_of_waits_for_every_event(env):
    def proc():
        results = yield env.all_of([env.timeout(3, "a"), env.timeout(1, "b")])
        return (env.now, sorted(results))

    assert env.run(env.process(proc())) == (3, ["a", "b"])


def test_any_of_fires_on_first(env):
    def proc():
        results = yield env.any_of([env.timeout(3, "slow"), env.timeout(1, "fast")])
        return (env.now, results)

    now, results = env.run(env.process(proc()))
    assert now == 1
    assert results == ["fast"]


def test_all_of_with_already_triggered_events(env):
    def proc():
        t = env.timeout(0, "x")
        yield env.timeout(1)
        results = yield env.all_of([t])
        return results

    assert env.run(env.process(proc())) == ["x"]


def test_yielding_non_event_fails_the_process(env):
    def bad():
        yield 42

    proc = env.process(bad())
    with pytest.raises(SimulationError):
        env.run(proc)


def test_deterministic_fifo_order_at_same_time(env):
    order = []

    def make(name):
        def proc():
            yield env.timeout(1)
            order.append(name)

        return proc

    for name in "abcde":
        env.process(make(name)())
    env.run()
    assert order == list("abcde")


def test_cannot_run_backwards(env):
    env.process(iter_timeout(env, 10))
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_run_until_event_that_never_fires_raises(env):
    gate = env.event()
    env.process(iter_timeout(env, 1))
    with pytest.raises(SimulationError):
        env.run(gate)
