"""Unit tests for the fair-share flow network and cluster topology."""

import pytest

from repro.sim import Environment, Link, Network, SimCluster, SimulationError
from repro.sim.cluster import make_nodes


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env)


def run_transfers(env, net, specs):
    """specs: list of (start_time, route, nbytes, cap). Returns finish times."""
    finishes = {}

    def one(i, start, route, nbytes, cap):
        if start:
            yield env.timeout(start)
        yield net.transfer(route, nbytes, cap=cap, name=f"f{i}")
        finishes[i] = env.now

    for i, (start, route, nbytes, cap) in enumerate(specs):
        env.process(one(i, start, route, nbytes, cap))
    env.run()
    return finishes


def test_single_flow_runs_at_link_capacity(env, net):
    link = Link(env, "l", 100.0)
    finishes = run_transfers(env, net, [(0, [link], 1000.0, None)])
    assert finishes[0] == pytest.approx(10.0)


def test_two_flows_share_fairly(env, net):
    link = Link(env, "l", 100.0)
    finishes = run_transfers(
        env, net, [(0, [link], 1000.0, None), (0, [link], 1000.0, None)]
    )
    # Each gets 50 B/s for the whole transfer.
    assert finishes[0] == pytest.approx(20.0)
    assert finishes[1] == pytest.approx(20.0)


def test_short_flow_releases_bandwidth_to_long_flow(env, net):
    link = Link(env, "l", 100.0)
    finishes = run_transfers(
        env, net, [(0, [link], 500.0, None), (0, [link], 1500.0, None)]
    )
    # Both at 50 B/s; short finishes at t=10 having moved 500.
    # Long has 1000 left, then runs at 100 B/s: finishes at t=20.
    assert finishes[0] == pytest.approx(10.0)
    assert finishes[1] == pytest.approx(20.0)


def test_flow_cap_limits_rate(env, net):
    link = Link(env, "l", 100.0)
    finishes = run_transfers(env, net, [(0, [link], 100.0, 10.0)])
    assert finishes[0] == pytest.approx(10.0)


def test_capped_flow_leaves_bandwidth_for_others(env, net):
    link = Link(env, "l", 100.0)
    finishes = run_transfers(
        env,
        net,
        [(0, [link], 100.0, 10.0), (0, [link], 900.0, None)],
    )
    # Capped flow: 10 B/s → done at 10. Other flow gets 90 B/s while the
    # capped one is active, then 100 B/s.
    assert finishes[0] == pytest.approx(10.0)
    assert finishes[1] == pytest.approx(10.0)  # 900/90 = 10


def test_multi_link_route_bottleneck(env, net):
    fast = Link(env, "fast", 100.0)
    slow = Link(env, "slow", 25.0)
    finishes = run_transfers(env, net, [(0, [fast, slow], 100.0, None)])
    assert finishes[0] == pytest.approx(4.0)


def test_late_arrival_slows_existing_flow(env, net):
    link = Link(env, "l", 100.0)
    finishes = run_transfers(
        env,
        net,
        [(0, [link], 1000.0, None), (5, [link], 250.0, None)],
    )
    # First 5 s: flow0 alone at 100 → 500 done. Then both at 50.
    # flow1: 250/50 = 5 s → finishes at 10. flow0: 250 more in that window,
    # 250 left at t=10, then 100 B/s → finishes 12.5.
    assert finishes[1] == pytest.approx(10.0)
    assert finishes[0] == pytest.approx(12.5)


def test_zero_byte_transfer_completes_instantly(env, net):
    link = Link(env, "l", 100.0)
    event = net.transfer([link], 0.0)
    assert event.triggered


def test_empty_route_transfer_is_free(env, net):
    event = net.transfer([], 12345.0)
    assert event.triggered


def test_negative_bytes_rejected(env, net):
    link = Link(env, "l", 100.0)
    with pytest.raises(SimulationError):
        net.transfer([link], -1.0)


def test_invalid_cap_rejected(env, net):
    link = Link(env, "l", 100.0)
    with pytest.raises(SimulationError):
        net.transfer([link], 10.0, cap=0.0)


def test_link_byte_accounting(env, net):
    link = Link(env, "l", 100.0)
    run_transfers(env, net, [(0, [link], 300.0, None), (0, [link], 700.0, None)])
    assert link.bytes_total == pytest.approx(1000.0)


def test_link_rate_log_records_saturation(env, net):
    link = Link(env, "l", 100.0)
    run_transfers(env, net, [(0, [link], 1000.0, None)])
    rates = dict(link.rate_log)
    assert rates[0.0] == pytest.approx(100.0)
    assert link.rate_log[-1][1] == 0.0


def test_many_flows_aggregate_to_capacity(env, net):
    link = Link(env, "l", 100.0)
    n = 20
    finishes = run_transfers(env, net, [(0, [link], 100.0, None)] * n)
    # 20 flows × 100 B over a 100 B/s link = 20 s for all.
    for i in range(n):
        assert finishes[i] == pytest.approx(20.0)


class TestCluster:
    def test_local_transfer_is_free(self, env):
        cluster = SimCluster(env)
        node = cluster.add_node("n0")
        event = cluster.transfer(node, node, 1e9)
        assert event.triggered

    def test_remote_transfer_uses_both_nics(self, env):
        cluster = SimCluster(env)
        a = cluster.add_node("a", nics={"default": 100.0})
        b = cluster.add_node("b", nics={"default": 100.0})

        def proc():
            yield cluster.transfer(a, b, 1000.0)
            return env.now

        assert env.run(env.process(proc())) == pytest.approx(10.0)
        assert a.nic().bytes_sent == pytest.approx(1000.0)
        assert b.nic().bytes_received == pytest.approx(1000.0)

    def test_separate_networks_do_not_contend(self, env):
        # Paper setup: Vertica-internal traffic on one NIC, Spark traffic on
        # the other. Flows on different NICs must not share capacity.
        cluster = SimCluster(env)
        a = cluster.add_node("a", nics={"internal": 100.0, "external": 100.0})
        b = cluster.add_node("b", nics={"internal": 100.0, "external": 100.0})
        finishes = {}

        def via(nic):
            def proc():
                yield cluster.transfer(a, b, 1000.0, nic=nic)
                finishes[nic] = env.now

            return proc

        env.process(via("internal")())
        env.process(via("external")())
        env.run()
        assert finishes["internal"] == pytest.approx(10.0)
        assert finishes["external"] == pytest.approx(10.0)

    def test_unknown_nic_raises(self, env):
        cluster = SimCluster(env)
        node = cluster.add_node("n0")
        with pytest.raises(SimulationError):
            node.nic("bogus")

    def test_duplicate_node_rejected(self, env):
        cluster = SimCluster(env)
        cluster.add_node("n0")
        with pytest.raises(SimulationError):
            cluster.add_node("n0")

    def test_make_nodes_names(self, env):
        cluster = SimCluster(env)
        nodes = make_nodes(cluster, "v", 4)
        assert [n.name for n in nodes] == ["v0", "v1", "v2", "v3"]

    def test_compute_occupies_core(self, env):
        cluster = SimCluster(env)
        node = cluster.add_node("n0", cores=1)
        order = []

        def job(name):
            yield from node.compute(5.0)
            order.append((name, env.now))

        env.process(job("first"))
        env.process(job("second"))
        env.run()
        assert order == [("first", 5.0), ("second", 10.0)]

    def test_zero_compute_is_free(self, env):
        cluster = SimCluster(env)
        node = cluster.add_node("n0", cores=1)

        def job():
            yield from node.compute(0.0)
            yield env.timeout(0)
            return env.now

        assert env.run(env.process(job())) == 0.0
        assert node.cores.in_use == 0
