"""Property-based tests of the fair-share network's physical invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Link, Network

transfer_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),    # start time
        st.floats(min_value=1.0, max_value=10_000.0),  # bytes
        st.one_of(st.none(), st.floats(min_value=1.0, max_value=200.0)),  # cap
    ),
    min_size=1,
    max_size=12,
)


def run_network(specs, capacity=100.0, two_links=False):
    env = Environment()
    net = Network(env)
    link_a = Link(env, "a", capacity)
    link_b = Link(env, "b", capacity * 2)
    route = [link_a, link_b] if two_links else [link_a]
    finishes = {}

    def one(index, start, nbytes, cap):
        if start:
            yield env.timeout(start)
        yield net.transfer(route, nbytes, cap=cap, name=f"f{index}")
        finishes[index] = env.now

    for index, (start, nbytes, cap) in enumerate(specs):
        env.process(one(index, start, nbytes, cap))
    env.run()
    return env, net, link_a, finishes


class TestConservation:
    @given(specs=transfer_specs)
    @settings(max_examples=60, deadline=None)
    def test_all_transfers_complete(self, specs):
        __, __, __, finishes = run_network(specs)
        assert len(finishes) == len(specs)

    @given(specs=transfer_specs)
    @settings(max_examples=60, deadline=None)
    def test_bytes_are_conserved(self, specs):
        __, __, link, __ = run_network(specs)
        total = sum(nbytes for __, nbytes, __ in specs)
        assert link.bytes_total == pytest.approx(total, rel=1e-6)

    @given(specs=transfer_specs)
    @settings(max_examples=60, deadline=None)
    def test_multi_link_routes_conserve_on_every_link(self, specs):
        __, __, link, __ = run_network(specs, two_links=True)
        total = sum(nbytes for __, nbytes, __ in specs)
        assert link.bytes_total == pytest.approx(total, rel=1e-6)


class TestCapacityRespect:
    @given(specs=transfer_specs)
    @settings(max_examples=60, deadline=None)
    def test_rate_never_exceeds_capacity(self, specs):
        __, __, link, __ = run_network(specs, capacity=100.0)
        for __, rate in link.rate_log:
            assert rate <= 100.0 + 1e-6

    @given(specs=transfer_specs)
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bound(self, specs):
        """No schedule can finish faster than total bytes / capacity."""
        env, __, __, finishes = run_network(specs, capacity=100.0)
        total = sum(nbytes for __, nbytes, __ in specs)
        first_start = min(start for start, __, __ in specs)
        assert env.now >= first_start + total / 100.0 - 1e-6

    @given(specs=transfer_specs)
    @settings(max_examples=60, deadline=None)
    def test_caps_respected_in_isolation(self, specs):
        """A single capped flow finishes no faster than bytes / cap."""
        for start, nbytes, cap in specs:
            if cap is None:
                continue
            env, __, __, finishes = run_network([(0.0, nbytes, cap)])
            assert env.now >= nbytes / min(cap, 100.0) - 1e-6


class TestFairness:
    @given(
        count=st.integers(min_value=2, max_value=10),
        nbytes=st.floats(min_value=100.0, max_value=5000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_equal_flows_finish_together(self, count, nbytes):
        env, __, __, finishes = run_network([(0.0, nbytes, None)] * count)
        times = list(finishes.values())
        assert max(times) == pytest.approx(min(times), rel=1e-9)
        assert max(times) == pytest.approx(nbytes * count / 100.0, rel=1e-6)

    @given(small=st.floats(min_value=10.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_smaller_flow_finishes_first(self, small):
        env, __, __, finishes = run_network(
            [(0.0, small, None), (0.0, small * 10, None)]
        )
        assert finishes[0] < finishes[1]
