"""Unit tests for simulation resources (Resource, Mutex, Store)."""

import pytest

from repro.sim import Environment, Mutex, Resource, SimulationError, Store


@pytest.fixture
def env():
    return Environment()


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    log = []

    def worker(name):
        req = res.request()
        yield req
        log.append((name, "start", env.now))
        yield env.timeout(10)
        res.release(req)
        log.append((name, "end", env.now))

    for name in ("a", "b", "c"):
        env.process(worker(name))
    env.run()
    starts = {name: t for name, kind, t in log if kind == "start"}
    assert starts == {"a": 0, "b": 0, "c": 10}


def test_resource_fifo_ordering(env):
    res = Resource(env, capacity=1)
    order = []

    def worker(name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1)
        res.release(req)

    for name in "abcd":
        env.process(worker(name))
    env.run()
    assert order == list("abcd")


def test_resource_multi_unit_requests(env):
    res = Resource(env, capacity=4)
    times = {}

    def worker(name, amount, hold):
        req = res.request(amount)
        yield req
        times[name] = env.now
        yield env.timeout(hold)
        res.release(req)

    env.process(worker("big", 3, 5))
    env.process(worker("small", 1, 5))
    env.process(worker("big2", 3, 5))  # must wait for big to finish
    env.run()
    assert times["big"] == 0
    assert times["small"] == 0
    assert times["big2"] == 5


def test_resource_rejects_oversized_request(env):
    res = Resource(env, capacity=2)
    with pytest.raises(SimulationError):
        res.request(3)
    with pytest.raises(SimulationError):
        res.request(0)


def test_resource_invalid_capacity(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_release_of_queued_request_cancels_it(env):
    res = Resource(env, capacity=1)
    held = res.request()
    assert held.triggered
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel while waiting
    assert res.queue_length == 0
    res.release(held)
    assert res.available == 1


def test_usage_log_tracks_in_use(env):
    res = Resource(env, capacity=2)

    def worker():
        req = res.request()
        yield req
        yield env.timeout(5)
        res.release(req)

    env.process(worker())
    env.process(worker())
    env.run()
    assert res.usage_log[0] == (0, 2)
    assert res.usage_log[-1] == (5, 0)


def test_mutex_is_single_slot(env):
    mutex = Mutex(env)
    assert mutex.capacity == 1


def test_store_put_then_get(env):
    store = Store(env)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    assert env.run(env.process(getter())) == "x"


def test_store_get_blocks_until_put(env):
    store = Store(env)
    result = {}

    def getter():
        item = yield store.get()
        result["item"] = item
        result["time"] = env.now

    def putter():
        yield env.timeout(4)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert result == {"item": "late", "time": 4}


def test_store_fifo_and_try_get(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.try_get() == 1
    assert store.try_get() == 2
    assert store.try_get() is None
    assert len(store) == 0
