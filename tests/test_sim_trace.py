"""Unit tests for utilisation tracing."""

import pytest

from repro.sim import UsageTrace, bucket_series


def test_constant_log_averages_to_value():
    log = [(0.0, 10.0)]
    assert bucket_series(log, 0, 4, 1) == [10.0, 10.0, 10.0, 10.0]


def test_step_change_splits_buckets():
    log = [(0.0, 0.0), (2.0, 100.0)]
    assert bucket_series(log, 0, 4, 2) == [0.0, 100.0]


def test_change_mid_bucket_is_time_weighted():
    log = [(0.0, 0.0), (1.0, 100.0)]
    assert bucket_series(log, 0, 2, 2) == [50.0]


def test_value_before_window_carries_in():
    log = [(0.0, 42.0)]
    assert bucket_series(log, 10, 12, 1) == [42.0, 42.0]


def test_empty_log_is_zero():
    assert bucket_series([], 0, 3, 1) == [0.0, 0.0, 0.0]


def test_empty_window():
    assert bucket_series([(0.0, 1.0)], 5, 5, 1) == []


def test_invalid_step_rejected():
    with pytest.raises(ValueError):
        bucket_series([], 0, 1, 0)


def test_multiple_changes_within_bucket():
    log = [(0.0, 0.0), (0.25, 40.0), (0.75, 80.0)]
    # 0.25*0 + 0.5*40 + 0.25*80 = 40
    assert bucket_series(log, 0, 1, 1) == [pytest.approx(40.0)]


def test_unsorted_log_matches_sorted():
    """Change points assembled from interleaved processes may arrive out
    of order; bucketing must sort them first or the windowed averages pick
    the wrong 'current' value."""
    ordered = [(0.0, 0.0), (1.0, 100.0), (2.0, 50.0), (3.0, 0.0)]
    shuffled = [ordered[2], ordered[0], ordered[3], ordered[1]]
    assert bucket_series(shuffled, 0, 4, 1) == bucket_series(ordered, 0, 4, 1)
    assert bucket_series(shuffled, 0, 4, 1) == [0.0, 100.0, 50.0, 0.0]


def test_unsorted_log_mid_bucket_weighting():
    shuffled = [(1.0, 100.0), (0.0, 0.0)]
    assert bucket_series(shuffled, 0, 2, 2) == [pytest.approx(50.0)]


class TestUsageTrace:
    def test_from_log_and_stats(self):
        trace = UsageTrace.from_log("cpu", [(0.0, 0.0), (5.0, 100.0)], 0, 10, 1)
        assert len(trace.values) == 10
        assert trace.peak == 100.0
        assert trace.mean == pytest.approx(50.0)

    def test_steady_state_skips_rampup(self):
        values = [0, 0, 0, 100, 100, 100, 100, 100]
        trace = UsageTrace("net", list(range(8)), values)
        assert trace.steady_state(skip_fraction=0.5) == 100.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            UsageTrace("x", [0, 1], [1.0])

    def test_sparkline_shape(self):
        trace = UsageTrace("x", list(range(4)), [0.0, 50.0, 100.0, 0.0])
        line = trace.sparkline(width=4)
        assert len(line) == 4
        assert line[0] == " "
        assert line[2] == "@"

    def test_sparkline_empty(self):
        assert UsageTrace("x", [], []).sparkline() == ""

    def test_sparkline_keeps_trailing_values(self):
        """A series longer than the width (and not a multiple of it) must
        still represent its tail: a final spike may not be dropped."""
        values = [0.0] * 95 + [100.0] * 6  # 101 values, width 60
        trace = UsageTrace("x", list(range(len(values))), values)
        line = trace.sparkline(width=60)
        assert len(line) == 60
        assert line[-1] != " "  # the trailing spike is visible

    def test_sparkline_trailing_value_odd_length(self):
        # 7 values into 3 cells: chunks of 2, 2, 3 — the last cell must
        # include the final value.
        values = [0.0] * 6 + [90.0]
        trace = UsageTrace("x", list(range(7)), values)
        line = trace.sparkline(width=3)
        assert len(line) == 3
        assert line[2] != " "

    def test_sparkline_wider_than_series(self):
        trace = UsageTrace("x", [0, 1], [0.0, 100.0])
        line = trace.sparkline(width=60)
        assert line == " @"
