"""Tests for RDD caching (persist) semantics."""

import pytest

from repro.spark import SparkSession


@pytest.fixture
def spark():
    return SparkSession(num_workers=2, cores_per_worker=2)


class TestCachedRdd:
    def test_cache_returns_same_data(self, spark):
        rdd = spark.parallelize(range(20), 4).map(lambda x: x * 2).cache()
        assert rdd.collect() == [x * 2 for x in range(20)]
        assert rdd.collect() == [x * 2 for x in range(20)]

    def test_parent_computed_once_per_partition(self, spark):
        calls = []

        def traced(x):
            calls.append(x)
            return x + 1

        rdd = spark.parallelize(range(10), 2).map(traced).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        rdd.count()
        assert len(calls) == first  # no recomputation after caching

    def test_uncached_recomputes_each_action(self, spark):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = spark.parallelize(range(10), 2).map(traced)
        rdd.collect()
        rdd.collect()
        assert len(calls) == 20

    def test_cached_partitions_counter(self, spark):
        rdd = spark.parallelize(range(8), 4).cache()
        assert rdd.cached_partitions == 0
        rdd.collect()
        assert rdd.cached_partitions == 4

    def test_unpersist_forces_recompute(self, spark):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = spark.parallelize(range(6), 2).map(traced).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 12

    def test_downstream_transformations_use_cache(self, spark):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        base = spark.parallelize(range(10), 2).map(traced).cache()
        assert base.map(lambda x: x * 2).collect() == [x * 2 for x in range(10)]
        assert base.filter(lambda x: x > 4).count() == 5
        assert len(calls) == 10  # one pass despite two downstream jobs

    def test_cache_returns_copies(self, spark):
        rdd = spark.parallelize([[1, 2]], 1).cache()
        first = rdd.collect()
        first[0].append(99)
        # mutating a collected row must not corrupt... the cached list
        # object itself is shared (like Spark's deserialized storage), but
        # the partition list is copied per job:
        assert len(rdd.collect()) == 1

    def test_cache_of_vertica_scan_avoids_requery(self):
        """Caching a V2S scan avoids re-querying Vertica — and therefore
        freezes the data even past the pinned epoch's scan."""
        from repro.connector import SimVerticaCluster
        from repro.connector.rdd_api import vertica_to_rdd
        from repro.sim import Environment

        env = Environment()
        vertica = SimVerticaCluster(env=env, num_nodes=2)
        spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=2)
        session = vertica.db.connect()
        session.execute("CREATE TABLE t (a INTEGER)")
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        rdd = vertica_to_rdd(spark, {"db": vertica, "table": "t",
                                     "numpartitions": 2}).cache()
        assert sorted(rdd.collect()) == [(1,), (2,), (3,)]
        session.execute("DELETE FROM t")
        # The cache still serves the loaded snapshot without touching the DB.
        assert sorted(rdd.collect()) == [(1,), (2,), (3,)]
