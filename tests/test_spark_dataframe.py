"""Tests for DataFrames, the External Data Source API, and MLlib."""

import pytest

from repro.spark import (
    BaseRelation,
    EqualTo,
    GreaterThan,
    In,
    IsNotNull,
    LessThan,
    SparkSession,
    StructField,
    StructType,
    register_source,
)
from repro.spark.datasource import apply_filters, filters_to_sql
from repro.spark.errors import AnalysisError

SCHEMA = StructType(
    [
        StructField("id", "long"),
        StructField("score", "double"),
        StructField("label", "string"),
    ]
)

ROWS = [
    (1, 0.5, "a"),
    (2, 1.5, "b"),
    (3, 2.5, None),
    (4, 3.5, "d"),
]


@pytest.fixture
def spark():
    return SparkSession(num_workers=2, cores_per_worker=2)


@pytest.fixture
def df(spark):
    return spark.create_dataframe(ROWS, SCHEMA, num_partitions=2)


class TestDataFrameBasics:
    def test_collect(self, df):
        assert df.collect() == ROWS

    def test_columns(self, df):
        assert df.columns == ["id", "score", "label"]

    def test_count(self, df):
        assert df.count() == 4

    def test_select(self, df):
        out = df.select("label", "id")
        assert out.columns == ["label", "id"]
        assert out.collect() == [(r[2], r[0]) for r in ROWS]

    def test_select_unknown_column(self, df):
        with pytest.raises(AnalysisError):
            df.select("nope")

    def test_filter_with_pushdown_filter_object(self, df):
        out = df.filter(GreaterThan("score", 1.0))
        assert out.collect() == ROWS[1:]

    def test_filter_with_callable(self, df):
        out = df.filter(lambda row: row[0] % 2 == 0)
        assert out.collect() == [ROWS[1], ROWS[3]]

    def test_schema_arity_check(self, spark):
        with pytest.raises(Exception):
            spark.create_dataframe([(1,)], SCHEMA)

    def test_take_and_show(self, df):
        assert df.take(2) == ROWS[:2]
        text = df.show(2)
        assert "id | score | label" in text

    def test_repartition(self, df):
        out = df.repartition(4)
        assert out.num_partitions == 4
        assert sorted(out.collect()) == sorted(ROWS)


class TestFilters:
    def test_filter_semantics(self):
        rows = [(1, None), (2, 5)]
        schema = StructType([StructField("a", "long"), StructField("b", "long")])
        assert apply_filters([IsNotNull("b")], schema, rows) == [(2, 5)]
        assert apply_filters([EqualTo("a", 1)], schema, rows) == [(1, None)]
        assert apply_filters([In("a", (2, 3))], schema, rows) == [(2, 5)]
        assert apply_filters([LessThan("a", 2)], schema, rows) == [(1, None)]

    def test_null_never_matches_comparisons(self):
        schema = StructType([StructField("a", "long")])
        assert apply_filters([GreaterThan("a", 0)], schema, [(None,)]) == []
        assert apply_filters([EqualTo("a", None)], schema, [(None,)]) == []

    def test_to_sql(self):
        sql = filters_to_sql(
            [GreaterThan("A", 5), EqualTo("B", "x'y"), IsNotNull("C")]
        )
        assert sql == "A > 5 AND B = 'x''y' AND C IS NOT NULL"


class _ListRelation(BaseRelation):
    """A toy relation recording what gets pushed down to it."""

    def __init__(self, session, rows, schema):
        self.session = session
        self.rows = rows
        self._schema = schema
        self.scans = []
        self.count_calls = []

    @property
    def schema(self):
        return self._schema

    def build_scan(self, required_columns=None, filters=()):
        self.scans.append((tuple(required_columns or ()), tuple(filters)))
        columns = list(required_columns) if required_columns else self._schema.names
        indices = [self._schema.index_of(c) for c in columns]
        rows = apply_filters(list(filters), self._schema, self.rows)
        pruned = [tuple(r[i] for i in indices) for r in rows]
        return self.session.parallelize(pruned, 2)

    def count(self, filters=()):
        self.count_calls.append(tuple(filters))
        return len(apply_filters(list(filters), self._schema, self.rows))


class _ListSource:
    last_relation = None

    def create_relation(self, session, options):
        relation = _ListRelation(session, ROWS, SCHEMA)
        _ListSource.last_relation = relation
        return relation


register_source("test.list", _ListSource)


class TestExternalDataSource:
    def test_load_via_format(self, spark):
        df = spark.read.format("test.list").options(path="x").load()
        assert df.is_relation_backed
        assert df.collect() == ROWS

    def test_filter_pushdown_reaches_source(self, spark):
        df = spark.read.format("test.list").load()
        out = df.filter(GreaterThan("score", 1.0)).collect()
        relation = _ListSource.last_relation
        assert out == ROWS[1:]
        assert relation.scans[-1][1] == (GreaterThan("score", 1.0),)

    def test_column_pruning_reaches_source(self, spark):
        df = spark.read.format("test.list").load()
        out = df.select("id").collect()
        assert out == [(r[0],) for r in ROWS]
        assert _ListSource.last_relation.scans[-1][0] == ("id",)

    def test_count_pushdown(self, spark):
        df = spark.read.format("test.list").load()
        assert df.filter(GreaterThan("id", 2)).count() == 2
        relation = _ListSource.last_relation
        assert relation.count_calls == [(GreaterThan("id", 2),)]
        assert relation.scans == []  # no scan was needed

    def test_unknown_format(self, spark):
        with pytest.raises(AnalysisError):
            spark.read.format("no.such.source").load()

    def test_reader_requires_format(self, spark):
        with pytest.raises(AnalysisError):
            spark.read.load()

    def test_writer_rejects_bad_mode(self, df):
        with pytest.raises(AnalysisError):
            df.write.format("test.list").mode("sideways")


class TestStructType:
    def test_create_table_sql(self):
        ddl = SCHEMA.create_table_sql("target", segmented_by=["id"])
        assert ddl == (
            "CREATE TABLE target (id INTEGER, score FLOAT, label VARCHAR(65000)) "
            "SEGMENTED BY HASH(id) ALL NODES"
        )

    def test_to_avro(self):
        avro = SCHEMA.to_avro("rec")
        assert avro.field_names() == ["id", "score", "label"]
        assert avro.field("id").kind == "long"
        assert avro.field("id").nullable

    def test_from_sql_types(self):
        from repro.vertica import FLOAT, INTEGER, VARCHAR

        schema = StructType.from_sql_types(
            [("A", INTEGER), ("B", FLOAT), ("C", VARCHAR(10))]
        )
        assert [f.data_type for f in schema] == ["long", "double", "string"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(AnalysisError):
            StructType([StructField("a", "long"), StructField("a", "long")])

    def test_row_width(self):
        assert SCHEMA.row_width((1, 2.0, "abc")) == 8 + 8 + 3


class TestMllib:
    def test_linear_regression_recovers_coefficients(self, spark):
        from repro.spark.mllib import LabeledPoint, train_linear_regression

        points = [
            LabeledPoint(3.0 + 2.0 * x1 - 1.0 * x2, [x1, x2])
            for x1 in range(5)
            for x2 in range(5)
        ]
        model = train_linear_regression(spark.parallelize(points, 2))
        assert model.intercept == pytest.approx(3.0, abs=1e-6)
        assert model.weights[0] == pytest.approx(2.0, abs=1e-6)
        assert model.weights[1] == pytest.approx(-1.0, abs=1e-6)
        assert model.predict([10.0, 1.0]) == pytest.approx(22.0, abs=1e-5)

    def test_logistic_regression_separates(self):
        from repro.spark.mllib import LabeledPoint, train_logistic_regression

        points = [LabeledPoint(1.0, [x]) for x in (2.0, 3.0, 4.0)]
        points += [LabeledPoint(0.0, [x]) for x in (-2.0, -3.0, -4.0)]
        model = train_logistic_regression(points, iterations=300)
        assert model.predict([3.0]) == 1.0
        assert model.predict([-3.0]) == 0.0
        assert 0.4 < model.predict_probability([0.0]) < 0.6

    def test_logistic_rejects_bad_labels(self):
        from repro.spark.mllib import LabeledPoint, MllibError, train_logistic_regression

        with pytest.raises(MllibError):
            train_logistic_regression([LabeledPoint(2.0, [1.0])])

    def test_kmeans_finds_clusters(self):
        from repro.spark.mllib import train_kmeans

        data = [[0.0, 0.0], [0.1, 0.1], [10.0, 10.0], [10.1, 9.9]]
        model = train_kmeans(data, k=2)
        assert model.predict([0.05, 0.05]) != model.predict([10.0, 10.0])
        assert model.cost(data) < 0.1

    def test_kmeans_deterministic(self):
        from repro.spark.mllib import train_kmeans

        data = [[float(i % 7), float(i % 3)] for i in range(50)]
        a = train_kmeans(data, k=3, seed=5)
        b = train_kmeans(data, k=3, seed=5)
        assert (a.centers == b.centers).all()

    def test_svm_separates(self):
        from repro.spark.mllib import LabeledPoint, train_svm

        points = [LabeledPoint(1.0, [x, 0.0]) for x in (2.0, 3.0, 4.0)]
        points += [LabeledPoint(0.0, [x, 0.0]) for x in (-2.0, -3.0, -4.0)]
        model = train_svm(points, iterations=300)
        assert model.predict([3.0, 0.0]) == 1.0
        assert model.predict([-3.0, 0.0]) == 0.0

    def test_pmml_round_trips_match_model(self):
        from repro.pmml import ModelEvaluator
        from repro.spark.mllib import (
            LabeledPoint,
            train_kmeans,
            train_linear_regression,
            train_logistic_regression,
            train_svm,
        )

        points = [
            LabeledPoint(1.0 if x > 0 else 0.0, [float(x), float(x * x % 5)])
            for x in range(-10, 11)
            if x != 0
        ]
        vectors = [p.features for p in points]
        linreg = train_linear_regression(points)
        logreg = train_logistic_regression(points, iterations=100)
        svm = train_svm(points, iterations=100)
        kmeans = train_kmeans(vectors, k=3)
        for model, convert in (
            (linreg, lambda v: v),
            (svm, lambda v: v),
            (kmeans, lambda v: float(v)),
        ):
            evaluator = ModelEvaluator.from_xml(model.to_pmml())
            for vector in vectors[:5]:
                assert evaluator.evaluate(vector) == pytest.approx(
                    convert(model.predict(vector))
                )
        evaluator = ModelEvaluator.from_xml(logreg.to_pmml())
        for vector in vectors[:5]:
            assert evaluator.evaluate(vector) == pytest.approx(
                logreg.predict_probability(vector)
            )
