"""Tests for DataFrame group_by/agg, union, and order_by."""

import pytest

from repro.spark import SparkSession, StructField, StructType
from repro.spark.errors import AnalysisError

SCHEMA = StructType(
    [
        StructField("region", "string"),
        StructField("amount", "double"),
        StructField("units", "long"),
    ]
)

ROWS = [
    ("east", 10.0, 1),
    ("east", 20.0, 2),
    ("west", 5.0, None),
    ("west", None, 4),
    ("north", 7.5, 3),
]


@pytest.fixture
def spark():
    return SparkSession(num_workers=2, cores_per_worker=2)


@pytest.fixture
def df(spark):
    return spark.create_dataframe(ROWS, SCHEMA, num_partitions=2)


class TestGroupBy:
    def test_count_rows(self, df):
        out = df.group_by("region").count()
        assert sorted(out.collect()) == [("east", 2), ("north", 1), ("west", 2)]
        assert out.columns == ["region", "count_all"]

    def test_sum_and_avg(self, df):
        out = df.group_by("region").agg(("amount", "sum"), ("amount", "avg"))
        by_region = {r[0]: r[1:] for r in out.collect()}
        assert by_region["east"] == (30.0, 15.0)
        assert by_region["west"] == (5.0, 5.0)  # NULL excluded
        assert out.columns == ["region", "sum_amount", "avg_amount"]

    def test_min_max(self, df):
        out = df.group_by("region").agg(("units", "min"), ("units", "max"))
        by_region = {r[0]: r[1:] for r in out.collect()}
        assert by_region["east"] == (1, 2)
        assert by_region["west"] == (4, 4)  # NULL excluded

    def test_count_column_skips_nulls(self, df):
        out = df.group_by("region").agg(("amount", "count"))
        by_region = dict(out.collect())
        assert by_region == {"east": 2, "west": 1, "north": 1}

    def test_all_null_group_aggregates_to_none(self, spark):
        frame = spark.create_dataframe(
            [("a", None, None)], SCHEMA, num_partitions=1
        )
        out = frame.group_by("region").agg(("amount", "sum"))
        assert out.collect() == [("a", None)]

    def test_result_is_dataframe(self, df):
        out = df.group_by("region").count().filter(lambda r: r[1] > 1)
        assert sorted(out.collect()) == [("east", 2), ("west", 2)]

    def test_matches_vertica_sql_group_by(self, df):
        """Spark-side group_by agrees with Vertica's SQL GROUP BY."""
        from repro.connector import SimVerticaCluster
        from repro.sim import Environment

        env = Environment()
        vertica = SimVerticaCluster(env=env, num_nodes=2)
        spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=2)
        frame = spark.create_dataframe(ROWS, SCHEMA, num_partitions=2)
        frame.write.format("vertica").options(
            db=vertica, table="sales", numpartitions=2, varchar_length=20
        ).mode("overwrite").save()
        session = vertica.db.connect()
        sql = dict(
            session.execute(
                "SELECT region, SUM(amount) FROM sales GROUP BY region"
            ).rows
        )
        spark_side = dict(
            (r[0], r[1])
            for r in frame.group_by("region").agg(("amount", "sum")).collect()
        )
        assert sql == spark_side

    def test_unknown_aggregate(self, df):
        with pytest.raises(AnalysisError):
            df.group_by("region").agg(("amount", "median"))

    def test_star_only_counts(self, df):
        with pytest.raises(AnalysisError):
            df.group_by("region").agg(("*", "sum"))

    def test_requires_columns(self, df):
        with pytest.raises(AnalysisError):
            df.group_by()

    def test_unknown_group_column(self, df):
        with pytest.raises(AnalysisError):
            df.group_by("nope")


class TestUnionAndOrder:
    def test_union(self, spark, df):
        extra = spark.create_dataframe(
            [("south", 1.0, 1)], SCHEMA, num_partitions=1
        )
        assert len(df.union(extra).collect()) == 6

    def test_union_schema_mismatch(self, spark, df):
        other = spark.create_dataframe(
            [(1,)], StructType([StructField("x", "long")]), num_partitions=1
        )
        with pytest.raises(AnalysisError):
            df.union(other)

    def test_order_by(self, df):
        out = df.order_by("region", "units")
        regions = [r[0] for r in out.collect()]
        assert regions == sorted(regions)

    def test_order_by_descending(self, df):
        out = df.order_by("amount", descending=True)
        amounts = [r[1] for r in out.collect()]
        # NULLs last in both directions, matching engine ORDER BY
        assert amounts == [20.0, 10.0, 7.5, 5.0, None]
