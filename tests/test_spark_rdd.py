"""Tests for RDDs and the SparkSession basics."""

import pytest

from repro.spark import SparkSession
from repro.spark.errors import SparkError


@pytest.fixture
def spark():
    return SparkSession(num_workers=2, cores_per_worker=4)


class TestParallelize:
    def test_collect_round_trip(self, spark):
        rdd = spark.parallelize(list(range(100)), 8)
        assert rdd.collect() == list(range(100))
        assert rdd.num_partitions == 8

    def test_partition_slices_cover_data(self, spark):
        rdd = spark.parallelize(list(range(10)), 3)
        parts = rdd.collect_partitions()
        assert len(parts) == 3
        assert [r for part in parts for r in part] == list(range(10))

    def test_empty_partitions_allowed(self, spark):
        rdd = spark.parallelize([1], 4)
        assert rdd.collect() == [1]

    def test_default_parallelism(self, spark):
        rdd = spark.parallelize(list(range(100)))
        assert rdd.num_partitions == spark.default_parallelism


class TestTransformations:
    def test_map(self, spark):
        assert spark.parallelize([1, 2, 3], 2).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_filter(self, spark):
        rdd = spark.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert rdd.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, spark):
        rdd = spark.parallelize([1, 2], 1).flat_map(lambda x: [x] * x)
        assert rdd.collect() == [1, 2, 2]

    def test_map_partitions_with_index(self, spark):
        rdd = spark.parallelize(range(4), 2).map_partitions_with_index(
            lambda i, rows: [(i, len(rows))]
        )
        assert rdd.collect() == [(0, 2), (1, 2)]

    def test_chained_lineage(self, spark):
        rdd = (
            spark.parallelize(range(20), 4)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * 10)
        )
        assert rdd.collect() == [x * 10 for x in range(1, 21) if x % 2 == 0]

    def test_union(self, spark):
        a = spark.parallelize([1, 2], 2)
        b = spark.parallelize([3], 1)
        union = a.union(b)
        assert union.num_partitions == 3
        assert union.collect() == [1, 2, 3]

    def test_immutability(self, spark):
        base = spark.parallelize([1, 2, 3], 1)
        doubled = base.map(lambda x: x * 2)
        assert base.collect() == [1, 2, 3]
        assert doubled.collect() == [2, 4, 6]


class TestRepartitioning:
    def test_coalesce_reduces_without_losing_rows(self, spark):
        rdd = spark.parallelize(range(100), 10).coalesce(3)
        assert rdd.num_partitions == 3
        assert sorted(rdd.collect()) == list(range(100))

    def test_coalesce_to_more_is_noop(self, spark):
        rdd = spark.parallelize(range(10), 2)
        assert rdd.coalesce(5) is rdd

    def test_repartition_up(self, spark):
        rdd = spark.parallelize(range(10), 2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(10))

    def test_partition_by_key(self, spark):
        rdd = spark.parallelize(range(20), 2).partition_by(4, key_fn=lambda x: x)
        parts = rdd.collect_partitions()
        for index, part in enumerate(parts):
            assert all(x % 4 == index for x in part)

    def test_invalid_partitions(self, spark):
        with pytest.raises(SparkError):
            spark.parallelize([1], 0)


class TestActions:
    def test_count(self, spark):
        assert spark.parallelize(range(57), 5).count() == 57

    def test_take(self, spark):
        assert spark.parallelize(range(100), 10).take(5) == [0, 1, 2, 3, 4]

    def test_reduce(self, spark):
        assert spark.parallelize(range(10), 3).reduce(lambda a, b: a + b) == 45

    def test_reduce_empty(self, spark):
        with pytest.raises(SparkError):
            spark.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_actions_are_repeatable(self, spark):
        rdd = spark.parallelize(range(10), 2).map(lambda x: x + 1)
        assert rdd.collect() == rdd.collect()
