"""Tests for the task scheduler: retries, speculation, cancellation."""

import pytest

from repro.sim import Environment, SimCluster
from repro.spark import JobFailedError, SparkSession
from repro.spark.faults import (
    FailOncePerTaskPolicy,
    FailureRatePolicy,
    InjectedFailure,
    ProbeFailurePolicy,
)
from repro.spark.scheduler import Executor, TaskScheduler


def make_scheduler(cores=2, workers=2, **kwargs):
    env = Environment()
    cluster = SimCluster(env)
    executors = [
        Executor(env, cluster.add_node(f"w{i}", cores=cores), cores)
        for i in range(workers)
    ]
    return env, TaskScheduler(env, executors, **kwargs)


def simple_task(value, duration=1.0):
    def thunk(ctx):
        yield ctx.env.timeout(duration)
        return value

    return thunk


class TestBasicExecution:
    def test_results_in_task_order(self):
        env, scheduler = make_scheduler()
        results = scheduler.run([simple_task(i) for i in range(6)])
        assert results == list(range(6))

    def test_slots_limit_concurrency(self):
        env, scheduler = make_scheduler(cores=1, workers=1)
        scheduler.run([simple_task(i, duration=2.0) for i in range(3)])
        assert env.now == pytest.approx(6.0)  # strictly serial

    def test_parallel_execution_across_slots(self):
        env, scheduler = make_scheduler(cores=4, workers=2)
        scheduler.run([simple_task(i, duration=2.0) for i in range(8)])
        assert env.now == pytest.approx(2.0)  # 8 slots, all parallel

    def test_plain_value_thunks(self):
        env, scheduler = make_scheduler()
        assert scheduler.run([lambda ctx: 42]) == [42]

    def test_task_context_fields(self):
        env, scheduler = make_scheduler()
        seen = {}

        def thunk(ctx):
            seen["partition"] = ctx.partition_id
            seen["attempt"] = ctx.attempt_number
            seen["total"] = ctx.num_partitions
            return None
            yield

        scheduler.run([thunk])
        assert seen == {"partition": 0, "attempt": 0, "total": 1}


class TestRetries:
    def test_failed_task_is_retried(self):
        env, scheduler = make_scheduler(
            fault_policy=FailOncePerTaskPolicy("work_done")
        )
        attempts = []

        def thunk(ctx):
            yield ctx.env.timeout(1.0)
            attempts.append(ctx.attempt_number)
            ctx.probe("work_done")
            return "ok"

        assert scheduler.run([thunk]) == ["ok"]
        assert attempts == [0, 1]

    def test_side_effects_repeat_on_retry(self):
        """A task that fails after a side effect repeats it — the hazard
        S2V's status table defends against."""
        env, scheduler = make_scheduler(
            fault_policy=ProbeFailurePolicy({(0, 0): "after_write"})
        )
        writes = []

        def thunk(ctx):
            yield ctx.env.timeout(1.0)
            writes.append(ctx.attempt_number)
            ctx.probe("after_write")
            return len(writes)

        scheduler.run([thunk])
        assert writes == [0, 1]  # the write happened twice

    def test_job_fails_after_max_failures(self):
        env, scheduler = make_scheduler(max_failures=3)

        def always_fails(ctx):
            yield ctx.env.timeout(1.0)
            raise InjectedFailure("boom")

        with pytest.raises(JobFailedError):
            scheduler.run([always_fails])

    def test_other_tasks_unaffected_by_one_retry(self):
        env, scheduler = make_scheduler(
            fault_policy=ProbeFailurePolicy({(1, 0): "p"})
        )

        def make(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                ctx.probe("p")
                return i

            return thunk

        assert scheduler.run([make(i) for i in range(4)]) == [0, 1, 2, 3]

    def test_failure_rate_policy_is_deterministic(self):
        policy_a = FailureRatePolicy(0.5)
        policy_b = FailureRatePolicy(0.5)
        env, sched_a = make_scheduler(fault_policy=policy_a)
        env, sched_b = make_scheduler(fault_policy=policy_b)

        def make(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                ctx.probe("point")
                return i

            return thunk

        assert sched_a.run([make(i) for i in range(16)]) == list(range(16))
        sched_b.run([make(i) for i in range(16)])
        assert policy_a.injected == policy_b.injected
        assert policy_a.injected  # some failures actually happened


class TestSpeculation:
    def test_straggler_gets_duplicate_attempt(self):
        env, scheduler = make_scheduler(cores=8, workers=2, speculation=True)
        attempts = {"straggler": 0}

        def fast(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                return i

            return thunk

        def straggler(ctx):
            attempts["straggler"] += 1
            if ctx.speculative:
                yield ctx.env.timeout(1.0)  # the duplicate is fast
            else:
                yield ctx.env.timeout(100.0)
            return "slow"

        thunks = [fast(i) for i in range(7)] + [straggler]
        results = scheduler.run(thunks)
        assert results[-1] == "slow"
        assert attempts["straggler"] == 2  # original + speculative duplicate
        assert env.now < 100.0  # the duplicate won

    def test_duplicate_side_effects_both_run(self):
        """Without killing losers, both attempts execute their effects."""
        env, scheduler = make_scheduler(
            cores=8, workers=2, speculation=True, kill_speculative_losers=False
        )
        effects = []

        def fast(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                return i

            return thunk

        def straggler(ctx):
            yield ctx.env.timeout(5.0 if ctx.speculative else 8.0)
            effects.append(ctx.speculative)
            return "done"

        scheduler.run([fast(i) for i in range(7)] + [straggler])
        env.run()  # let the zombie loser finish
        assert len(effects) == 2

    def test_failed_speculative_duplicate_does_not_relaunch(self):
        """Regression: a speculative duplicate that fails while the
        original attempt is still running must not trigger a retry — the
        original is the retry.  Previously the driver relaunched, spawning
        a third concurrent copy of the task."""
        env, scheduler = make_scheduler(
            cores=8, workers=2, speculation=True,
            fault_policy=ProbeFailurePolicy({(7, 1): "speculative_work"}),
        )

        def fast(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                return i

            return thunk

        def straggler(ctx):
            yield ctx.env.timeout(1.0 if ctx.speculative else 10.0)
            ctx.probe("speculative_work")
            return "slow"

        job = scheduler.submit([fast(i) for i in range(7)] + [straggler])
        results = env.run(job.done)
        assert results[-1] == "slow"
        task = job.tasks[7]
        assert task.failures == 1  # the duplicate's failure is recorded
        assert task.attempts_started == 2  # original + duplicate, no third

    def test_flaky_speculative_duplicate_cannot_cancel_healthy_job(self):
        """Regression: with max_failures=1, a failed speculative duplicate
        used to count against the task and cancel the whole job even
        though the healthy original was still running."""
        env, scheduler = make_scheduler(
            cores=8, workers=2, speculation=True, max_failures=1,
            fault_policy=ProbeFailurePolicy({(7, 1): "speculative_work"}),
        )

        def fast(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                return i

            return thunk

        def straggler(ctx):
            yield ctx.env.timeout(1.0 if ctx.speculative else 10.0)
            ctx.probe("speculative_work")
            return "slow"

        results = scheduler.run([fast(i) for i in range(7)] + [straggler])
        assert results == [0, 1, 2, 3, 4, 5, 6, "slow"]
        assert env.now == pytest.approx(10.0)  # the original finished

    def test_losers_killed_when_configured(self):
        env, scheduler = make_scheduler(
            cores=8, workers=2, speculation=True, kill_speculative_losers=True
        )
        effects = []

        def fast(i):
            def thunk(ctx):
                yield ctx.env.timeout(1.0)
                return i

            return thunk

        def straggler(ctx):
            yield ctx.env.timeout(2.0 if ctx.speculative else 50.0)
            effects.append(ctx.speculative)
            return "done"

        scheduler.run([fast(i) for i in range(7)] + [straggler])
        env.run()
        assert effects == [True]  # only the winner's effect


class TestCancellation:
    def test_cancel_kills_running_tasks(self):
        env, scheduler = make_scheduler()
        completed = []

        def thunk(ctx):
            yield ctx.env.timeout(100.0)
            completed.append(ctx.partition_id)
            return ctx.partition_id

        job = scheduler.submit([thunk, thunk], "doomed")

        def canceller():
            yield env.timeout(5.0)
            job.cancel("total Spark failure")

        env.process(canceller())
        with pytest.raises(JobFailedError):
            env.run(job.done)
        assert env.now == pytest.approx(5.0)  # job failed at cancellation time
        env.run()  # drain any orphan timers
        assert completed == []  # killed tasks never ran their effects


class TestSparkSessionIntegration:
    def test_session_runs_jobs_with_faults(self):
        spark = SparkSession(
            num_workers=2,
            cores_per_worker=2,
            fault_policy=FailOncePerTaskPolicy("compute"),
        )

        def job(ctx):
            yield ctx.env.timeout(1.0)
            ctx.probe("compute")
            return ctx.partition_id

        assert spark.run_thunks([job, job]) == [0, 1]

    def test_rdd_recomputed_from_lineage_after_failure(self):
        policy = FailOncePerTaskPolicy("task_start")

        class StartFailPolicy(FailOncePerTaskPolicy):
            def on_task_start(self, ctx):
                self.on_probe(ctx, "task_start")

        spark = SparkSession(
            num_workers=2, cores_per_worker=2,
            fault_policy=StartFailPolicy("task_start"),
        )
        rdd = spark.parallelize(range(10), 4).map(lambda x: x * 2)
        assert sorted(rdd.collect()) == [x * 2 for x in range(10)]
