"""Differential fuzzing of the SQL engine.

Hypothesis generates random tables and simple predicates; the engine's
answers are checked against a direct Python evaluation of the same
predicate over the same rows.  This catches planner/visibility bugs the
hand-written tests might miss (e.g. hash-range pruning dropping rows, or
NULL semantics diverging between the scan and the reference).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vertica import VerticaDatabase

values = st.one_of(
    st.none(),
    st.integers(min_value=-100, max_value=100),
)

rows_strategy = st.lists(
    st.tuples(values, values, st.booleans()),
    min_size=0,
    max_size=30,
)

OPERATORS = ("=", "<>", "<", "<=", ">", ">=")

comparisons = st.tuples(
    st.sampled_from(["A", "B"]),
    st.sampled_from(OPERATORS),
    st.integers(min_value=-100, max_value=100),
)


def python_compare(value, op, literal):
    if value is None:
        return False  # SQL: NULL comparisons are not TRUE
    return {
        "=": value == literal,
        "<>": value != literal,
        "<": value < literal,
        "<=": value <= literal,
        ">": value > literal,
        ">=": value >= literal,
    }[op]


def build_db(rows):
    db = VerticaDatabase(num_nodes=3)
    session = db.connect()
    session.execute(
        "CREATE TABLE t (a INTEGER, b INTEGER, f BOOLEAN) "
        "SEGMENTED BY HASH(a) ALL NODES"
    )
    if rows:
        literals = ", ".join(
            "("
            + ", ".join(
                "NULL" if v is None else ("TRUE" if v is True else
                                          "FALSE" if v is False else str(v))
                for v in row
            )
            + ")"
            for row in rows
        )
        session.execute(f"INSERT INTO t VALUES {literals}")
    return db, session


class TestDifferentialSelect:
    @given(rows=rows_strategy, predicate=comparisons)
    @settings(max_examples=50, deadline=None)
    def test_where_matches_python(self, rows, predicate):
        column, op, literal = predicate
        db, session = build_db(rows)
        result = session.execute(
            f"SELECT a, b, f FROM t WHERE {column} {op} {literal}"
        )
        index = {"A": 0, "B": 1}[column]
        expected = [r for r in rows if python_compare(r[index], op, literal)]
        assert sorted(result.rows, key=repr) == sorted(expected, key=repr)

    @given(rows=rows_strategy, p1=comparisons, p2=comparisons,
           conjunction=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_and_or_match_python(self, rows, p1, p2, conjunction):
        (c1, o1, l1), (c2, o2, l2) = p1, p2
        joiner = "AND" if conjunction else "OR"
        db, session = build_db(rows)
        result = session.execute(
            f"SELECT COUNT(*) FROM t WHERE {c1} {o1} {l1} {joiner} {c2} {o2} {l2}"
        )
        index = {"A": 0, "B": 1}

        def holds(row):
            left = python_compare(row[index[c1]], o1, l1)
            right = python_compare(row[index[c2]], o2, l2)
            # Python reference with SQL's NULL-is-not-TRUE behaviour: for
            # OR, a NULL side is falsy but the other side can still win.
            return (left and right) if conjunction else (left or right)

        # Note: this reference is sound because python_compare returns
        # False for NULL operands, and Kleene TRUE-dominance for OR /
        # FALSE-dominance for AND coincides with it when outputs are
        # only consumed as "row kept or not".
        assert result.scalar() == sum(1 for r in rows if holds(r))

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_aggregates_match_python(self, rows):
        db, session = build_db(rows)
        result = session.execute(
            "SELECT COUNT(*), COUNT(a), SUM(a), MIN(a), MAX(a) FROM t"
        )
        a_values = [r[0] for r in rows if r[0] is not None]
        expected = (
            len(rows),
            len(a_values),
            sum(a_values) if a_values else None,
            min(a_values) if a_values else None,
            max(a_values) if a_values else None,
        )
        assert result.rows[0] == expected

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_is_null_partition(self, rows):
        db, session = build_db(rows)
        nulls = session.scalar("SELECT COUNT(*) FROM t WHERE a IS NULL")
        not_nulls = session.scalar("SELECT COUNT(*) FROM t WHERE a IS NOT NULL")
        assert nulls == sum(1 for r in rows if r[0] is None)
        assert nulls + not_nulls == len(rows)

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_python(self, rows):
        db, session = build_db(rows)
        result = session.execute(
            "SELECT f, COUNT(*) FROM t GROUP BY f ORDER BY f"
        )
        expected = {}
        for row in rows:
            expected[row[2]] = expected.get(row[2], 0) + 1
        assert dict(result.rows) == expected

    @given(rows=rows_strategy, limit=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_order_by_limit(self, rows, limit):
        db, session = build_db(rows)
        result = session.execute(
            f"SELECT b FROM t WHERE b IS NOT NULL ORDER BY b LIMIT {limit}"
        )
        expected = sorted(r[1] for r in rows if r[1] is not None)[:limit]
        assert [r[0] for r in result.rows] == expected

    @given(
        rows=rows_strategy,
        values=st.lists(
            st.integers(min_value=-100, max_value=100), max_size=5
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_in_filter_pushed_matches_apply_filters(self, rows, values):
        """The pushed-down ``In`` SQL and Spark-side ``apply_filters``
        agree on every row set — including the empty value list, which
        must render as FALSE (``col IN ()`` is a syntax error) and the
        NULL rows, which never match."""
        from repro.spark.datasource import In, apply_filters
        from repro.spark.row import StructField, StructType

        db, session = build_db(rows)
        condition = In("A", tuple(values))
        engine = session.execute(
            f"SELECT a, b, f FROM t WHERE {condition.to_sql()}"
        ).rows
        schema = StructType(
            [StructField("a", "long"), StructField("b", "long"),
             StructField("f", "boolean")]
        )
        spark_side = apply_filters([condition], schema, rows)
        assert sorted(engine, key=repr) == sorted(spark_side, key=repr)
        assert all(r[0] is not None for r in engine)

    @given(rows=rows_strategy, descending=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_order_by_nulls_last_both_directions(self, rows, descending):
        """Engine ORDER BY keeps NULLs last whichever way values sort."""
        db, session = build_db(rows)
        direction = "DESC" if descending else "ASC"
        result = session.execute(f"SELECT a FROM t ORDER BY a {direction}")
        got = [r[0] for r in result.rows]
        present = sorted(
            (v for v in got if v is not None), reverse=descending
        )
        assert got == present + [None] * (len(got) - len(present))

    @given(rows=rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_delete_then_count(self, rows):
        db, session = build_db(rows)
        deleted = session.execute("DELETE FROM t WHERE f = TRUE").rowcount
        remaining = session.scalar("SELECT COUNT(*) FROM t")
        assert deleted == sum(1 for r in rows if r[2] is True)
        assert remaining == len(rows) - deleted
