"""Tests for the distributed-FS staging transport (S2V and V2S).

The staging transport replaces JDBC row streams with columnar files on
the simulated HDFS: S2V tasks write attempt-named files committed via a
rename-free ``_MANIFEST`` (Stocator-style), V2S exports segment-local
files that scan tasks read block-locally.  These tests pin the
exactly-once and cleanup guarantees: winners' data lands exactly once,
losers' files are swept, and nothing outlives its job on the staging FS.
"""

import pytest

from repro import telemetry
from repro.baselines.hdfs_source import SimHdfsCluster
from repro.connector import SimVerticaCluster
from repro.connector.defaultsource import DefaultSource
from repro.connector.options import ConnectorOptions, OptionsError
from repro.connector.s2v import FINAL_STATUS_TABLE
from repro.connector.v2s import VerticaRelation
from repro.sim import Environment
from repro.spark import JobFailedError, SparkSession, StructField, StructType
from repro.spark.faults import ProbeFailurePolicy

SCHEMA = StructType([StructField("id", "long"), StructField("val", "double")])
ROWS = [(i, float(i) * 0.25) for i in range(200)]
NUM_TASKS = 4
ROOT = "/staging"


def make_fabric(fault_policy=None, speculation=False):
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=3)
    spark = SparkSession(
        env=env,
        cluster=vc.sim_cluster,
        num_workers=4,
        fault_policy=fault_policy,
        speculation=speculation,
    )
    hdfs = SimHdfsCluster(env, vc.sim_cluster, num_nodes=3)
    return vc, spark, hdfs


def staged_options(vc, hdfs, table="dest", **extra):
    options = {
        "db": vc,
        "table": table,
        "numpartitions": NUM_TASKS,
        "transport": "staging",
        "staging_fs": hdfs,
        "staging_root": ROOT,
    }
    options.update(extra)
    return options


def save(vc, spark, hdfs, rows=ROWS, mode="overwrite", table="dest", **extra):
    df = spark.create_dataframe(rows, SCHEMA, num_partitions=NUM_TASKS)
    df.write.format("vertica").options(
        staged_options(vc, hdfs, table, **extra)
    ).mode(mode).save()
    return DefaultSource.last_save_result


def table_rows(vc, table="dest"):
    session = vc.db.connect()
    try:
        return sorted(session.execute(f"SELECT * FROM {table}").rows)
    finally:
        session.close()


def staging_files(hdfs):
    return hdfs.fs.list(ROOT + "/")


class TestStagedS2V:
    def test_overwrite_creates_table(self):
        vc, spark, hdfs = make_fabric()
        result = save(vc, spark, hdfs)
        assert table_rows(vc) == sorted(ROWS)
        assert result.status == "SUCCESS"
        assert result.rows_loaded == len(ROWS)

    def test_overwrite_replaces_existing(self):
        vc, spark, hdfs = make_fabric()
        save(vc, spark, hdfs, rows=[(999, 1.0)])
        save(vc, spark, hdfs)
        assert table_rows(vc) == sorted(ROWS)

    def test_append_adds_rows(self):
        vc, spark, hdfs = make_fabric()
        save(vc, spark, hdfs)
        save(vc, spark, hdfs, rows=[(1000, -1.0)], mode="append")
        assert table_rows(vc) == sorted(ROWS + [(1000, -1.0)])

    def test_errorifexists_leaves_no_staging_files(self):
        vc, spark, hdfs = make_fabric()
        save(vc, spark, hdfs)
        with pytest.raises(Exception):
            save(vc, spark, hdfs, mode="errorifexists")
        assert table_rows(vc) == sorted(ROWS)
        assert staging_files(hdfs) == []

    def test_staging_swept_after_success(self):
        vc, spark, hdfs = make_fabric()
        save(vc, spark, hdfs)
        # attempt files and the _MANIFEST are all gone
        assert staging_files(hdfs) == []

    def test_loser_attempt_file_is_orphan_swept(self):
        # Attempt 0 of task 1 dies *after* writing its staged file but
        # before claiming its status row; the retry writes a second file
        # and wins.  The loser's file must be swept, the data must land
        # exactly once.
        policy = ProbeFailurePolicy({(1, 0): "s2v:staged_after_file_write"})
        vc, spark, hdfs = make_fabric(fault_policy=policy)
        save(vc, spark, hdfs)
        assert policy.injected
        assert table_rows(vc) == sorted(ROWS)
        assert staging_files(hdfs) == []

    def test_crash_before_file_write_retries(self):
        policy = ProbeFailurePolicy({(2, 0): "s2v:staged_before_file_write"})
        vc, spark, hdfs = make_fabric(fault_policy=policy)
        save(vc, spark, hdfs)
        assert policy.injected
        assert table_rows(vc) == sorted(ROWS)
        assert staging_files(hdfs) == []

    def test_crash_around_manifest_write_is_survivable(self):
        # The manifest write is idempotent: a committer crash on either
        # side of it must not duplicate rows or leak files.
        for probe in ("s2v:staged_before_manifest", "s2v:staged_after_manifest"):
            failures = {(task, 0): probe for task in range(NUM_TASKS)}
            policy = ProbeFailurePolicy(failures)
            vc, spark, hdfs = make_fabric(fault_policy=policy)
            save(vc, spark, hdfs)
            assert policy.injected, probe
            assert table_rows(vc) == sorted(ROWS), probe
            assert staging_files(hdfs) == [], probe

    def test_failed_job_sweeps_staging(self):
        # every attempt of task 0 dies after writing its file: the job
        # fails, the target stays absent, and the staging FS is swept.
        failures = {
            (0, attempt): "s2v:staged_after_file_write" for attempt in range(8)
        }
        policy = ProbeFailurePolicy(failures)
        vc, spark, hdfs = make_fabric(fault_policy=policy)
        with pytest.raises(JobFailedError):
            save(vc, spark, hdfs)
        assert not vc.db.catalog.has_table("DEST")
        assert staging_files(hdfs) == []

    def test_speculative_duplicates_do_not_duplicate(self):
        vc, spark, hdfs = make_fabric(speculation=True)
        save(vc, spark, hdfs)
        assert table_rows(vc) == sorted(ROWS)
        assert staging_files(hdfs) == []

    def test_orphan_sweep_is_counted(self):
        telemetry.install(telemetry.MetricsRegistry(enabled=True))
        try:
            policy = ProbeFailurePolicy(
                {(1, 0): "s2v:staged_after_file_write"}
            )
            vc, spark, hdfs = make_fabric(fault_policy=policy)
            save(vc, spark, hdfs)
            swept = telemetry.counter("hdfs.staging.orphans_swept").value
            assert swept >= 1
        finally:
            telemetry.reset()


class TestStagedV2S:
    def _populate(self, vc, table="src", rows=ROWS):
        session = vc.db.connect()
        session.execute(
            f"CREATE TABLE {table} (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)"
        )
        values = ", ".join(f"({i}, {v})" for i, v in rows)
        session.execute(f"INSERT INTO {table} VALUES {values}")
        session.close()

    def test_round_trip_rows_equal(self):
        vc, spark, hdfs = make_fabric()
        self._populate(vc)
        df = spark.read.format("vertica").options(
            staged_options(vc, hdfs, table="src")
        ).load()
        assert sorted(df.collect()) == sorted(ROWS)

    def test_scan_is_pinned_to_export_epoch(self):
        vc, spark, hdfs = make_fabric()
        self._populate(vc)
        relation = VerticaRelation(
            spark, staged_options(vc, hdfs, table="src")
        )
        rdd = relation.build_scan()
        # writers advance the table *after* the export: the staged scan
        # must still produce the snapshot it exported.
        session = vc.db.connect()
        session.execute("INSERT INTO src VALUES (9999, -9.0)")
        session.close()
        rows = [row for part in spark.run_job(rdd) for row in part]
        assert sorted(rows) == sorted(ROWS)

    def test_projection_is_pushed_into_export(self):
        vc, spark, hdfs = make_fabric()
        self._populate(vc)
        relation = VerticaRelation(
            spark, staged_options(vc, hdfs, table="src")
        )
        rdd = relation.build_scan(required_columns=["id"])
        rows = [row for part in spark.run_job(rdd) for row in part]
        assert sorted(rows) == sorted((i,) for i, __ in ROWS)

    def test_cleanup_staging_removes_exports(self):
        vc, spark, hdfs = make_fabric()
        self._populate(vc)
        df = spark.read.format("vertica").options(
            staged_options(vc, hdfs, table="src")
        ).load()
        df.collect()
        assert staging_files(hdfs)  # export files exist until cleaned
        deleted = df._relation.cleanup_staging()
        assert deleted
        assert staging_files(hdfs) == []
        # idempotent: a second cleanup has nothing left to do
        assert df._relation.cleanup_staging() == []

    def test_export_files_are_columnar_and_block_local(self):
        vc, spark, hdfs = make_fabric()
        self._populate(vc)
        relation = VerticaRelation(
            spark, staged_options(vc, hdfs, table="src")
        )
        rdd = relation.build_scan()
        paths = staging_files(hdfs)
        assert paths
        from repro.hdfs import read_columnar

        exported = []
        for path in paths:
            __, rows = read_columnar(hdfs.fs.read(path))
            exported.extend(rows)
        assert sorted(exported) == sorted(ROWS)
        # one scan partition per exported block
        total_blocks = sum(hdfs.fs.total_blocks(p) for p in paths)
        assert rdd.num_partitions == total_blocks


class TestStagingOptions:
    def test_transport_must_be_known(self):
        vc, __, ___ = make_fabric()
        with pytest.raises(OptionsError):
            ConnectorOptions({"db": vc, "table": "t", "transport": "carrier"})

    def test_staging_requires_fs(self):
        vc, __, ___ = make_fabric()
        with pytest.raises(OptionsError):
            ConnectorOptions({"db": vc, "table": "t", "transport": "staging"})

    def test_staging_root_must_be_absolute_dir(self):
        vc, __, hdfs = make_fabric()
        for bad in ("relative/path", "/trailing/", ""):
            with pytest.raises(OptionsError):
                ConnectorOptions({
                    "db": vc, "table": "t", "transport": "staging",
                    "staging_fs": hdfs, "staging_root": bad,
                })

    def test_staging_rejects_prehash(self):
        vc, __, hdfs = make_fabric()
        with pytest.raises(OptionsError):
            ConnectorOptions({
                "db": vc, "table": "t", "transport": "staging",
                "staging_fs": hdfs, "prehash_partitioning": True,
            })

    def test_direct_is_default(self):
        vc, __, ___ = make_fabric()
        opts = ConnectorOptions({"db": vc, "table": "t"})
        assert opts.transport == "direct"
