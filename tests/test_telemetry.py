"""Tests for the telemetry layer: registry, spans, snapshots — and the
acceptance scenario: an S2V save under random failures plus speculation
whose counters must equal the scheduler's ground truth exactly.
"""

import pytest

from repro import telemetry
from repro.sim import Environment
from repro.telemetry import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_SPAN,
    NULL_TIMER,
)


@pytest.fixture
def registry():
    reg = telemetry.install(MetricsRegistry(enabled=True))
    yield reg
    telemetry.reset()


class TestDisabledRegistry:
    def test_global_registry_starts_disabled(self):
        telemetry.reset()
        assert not telemetry.enabled()

    def test_disabled_instruments_are_shared_nulls(self):
        telemetry.reset()
        assert telemetry.counter("x") is NULL_COUNTER
        assert telemetry.timer("x") is NULL_TIMER
        assert telemetry.span("x") is NULL_SPAN

    def test_null_instruments_are_inert(self):
        telemetry.reset()
        counter = telemetry.counter("x")
        counter.inc()
        counter.inc(100)
        assert counter.value == 0.0
        gauge = telemetry.gauge("g")
        gauge.set(5)
        gauge.inc()
        assert gauge.value == 0.0 and gauge.peak == 0.0

    def test_null_span_is_reentrant(self):
        telemetry.reset()
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert outer is inner  # one shared null object
        snapshot = telemetry.get_registry().snapshot()
        assert snapshot.spans == []
        assert snapshot.counters == {}

    def test_disabled_snapshot_renders(self):
        telemetry.reset()
        text = telemetry.get_registry().snapshot().render()
        assert "no instruments recorded" in text


class TestInstruments:
    def test_counter_accumulates(self, registry):
        telemetry.counter("events").inc()
        telemetry.counter("events").inc(4)
        assert telemetry.counter("events").value == 5.0
        assert telemetry.counter("events") is registry.counter("events")

    def test_gauge_tracks_peak(self, registry):
        gauge = telemetry.gauge("depth")
        gauge.inc(3)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 1.0
        assert gauge.peak == 5.0

    def test_histogram_summary(self, registry):
        hist = telemetry.histogram("lat")
        for value in (1.0, 3.0, 8.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(4.0)
        summary = hist.summary()
        assert summary["min"] == 1.0 and summary["max"] == 8.0

    def test_unbound_clock_is_monotonic(self, registry):
        first = telemetry.now()
        second = telemetry.now()
        assert second > first

    def test_timer_records_sim_time(self, registry):
        env = Environment()
        registry.bind(env)

        def proc():
            with telemetry.timer("op"):
                yield env.timeout(2.5)

        env.process(proc())
        env.run()
        hist = registry.histogram("op")
        assert hist.count == 1
        assert hist.total == pytest.approx(2.5)


class TestSpans:
    def test_nesting_sets_parent(self, registry):
        with telemetry.span("parent"):
            with telemetry.span("child"):
                pass
        child, parent = registry.spans[0], registry.spans[1]
        assert child.name == "child"  # inner closes first
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None

    def test_tags_are_recorded(self, registry):
        with telemetry.span("s2v.phase1", task=3, attempt=0):
            pass
        record = registry.spans[0]
        assert record.tag_dict == {"attempt": 0, "task": 3}

    def test_error_is_captured_and_not_suppressed(self, registry):
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        record = registry.spans[0]
        assert record.error == "ValueError: boom"

    def test_durations_use_sim_clock(self, registry):
        env = Environment()
        registry.bind(env)

        def proc():
            with telemetry.span("work"):
                yield env.timeout(4.0)

        env.process(proc())
        env.run()
        assert registry.spans[0].duration == pytest.approx(4.0)

    def test_interleaved_processes_keep_separate_ancestry(self, registry):
        """Two sim processes opening spans concurrently must not become
        each other's parents — ancestry is per logical thread."""
        env = Environment()
        registry.bind(env)

        def worker(name, delay):
            with telemetry.span(name):
                yield env.timeout(delay)
                with telemetry.span(name + ".child"):
                    yield env.timeout(delay)

        env.process(worker("a", 1.0))
        env.process(worker("b", 1.5))
        env.run()
        by_name = {record.name: record for record in registry.spans}
        assert by_name["a.child"].parent_id == by_name["a"].span_id
        assert by_name["b.child"].parent_id == by_name["b"].span_id
        assert by_name["a"].parent_id is None
        assert by_name["b"].parent_id is None


class TestSnapshot:
    def test_snapshot_freezes_state(self, registry):
        telemetry.counter("c").inc(2)
        telemetry.gauge("g").set(7)
        telemetry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        telemetry.counter("c").inc(100)  # after the freeze
        assert snapshot.counter("c") == 2.0
        assert snapshot.counter("missing", default=-1) == -1
        assert snapshot.gauges["g"] == (7.0, 7.0)
        assert snapshot.histograms["h"]["count"] == 1

    def test_kernel_stats_included_when_bound(self, registry):
        env = Environment()
        registry.bind(env)

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        env.run()
        snapshot = registry.snapshot()
        assert snapshot.kernel["processes_started"] == 1
        assert snapshot.kernel["events_processed"] >= 1

    def test_span_summary(self, registry):
        env = Environment()
        registry.bind(env)

        def proc(delay):
            with telemetry.span("op"):
                yield env.timeout(delay)

        env.process(proc(1.0))
        env.process(proc(3.0))
        env.run()
        snapshot = registry.snapshot()
        summary = snapshot.span_summary()["op"]
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(2.0)
        assert snapshot.span_names() == ["op"]
        assert len(snapshot.spans_named("op")) == 2

    def test_render_contains_sections(self, registry):
        telemetry.counter("spark.jobs_submitted").inc()
        with telemetry.span("s2v.phase1", task=0):
            pass
        text = registry.snapshot().render()
        assert "telemetry" in text
        assert "spark.jobs_submitted" in text
        assert "s2v.phase1" in text

    def test_report_merges_attached_snapshots(self, registry):
        from repro.bench.report import ExperimentReport

        report = ExperimentReport("t", "merge test")
        telemetry.counter("c").inc(2)
        report.attach_telemetry(registry.snapshot())
        registry.clear()
        telemetry.counter("c").inc(3)
        report.attach_telemetry(registry.snapshot())
        assert report.telemetry.counter("c") == 5.0
        assert "telemetry" in report.render()

    def test_clear_drops_state(self, registry):
        telemetry.counter("c").inc()
        with telemetry.span("s"):
            pass
        registry.clear()
        snapshot = registry.snapshot()
        assert snapshot.counters == {}
        assert snapshot.spans == []


class TestFabricIntegration:
    def test_fabric_telemetry_off_by_default(self):
        from repro.bench.fabric import Fabric

        Fabric()
        assert not telemetry.enabled()
        telemetry.reset()

    def test_fabric_installs_bound_registry(self):
        from repro.bench.fabric import Fabric

        fabric = Fabric(telemetry=True)
        try:
            assert telemetry.enabled()
            assert telemetry.get_registry().env is fabric.env
        finally:
            telemetry.reset()

    def test_fabric_snapshot_includes_nic_traces(self):
        from repro.bench.fabric import Fabric
        from repro.workloads.datasets import make_d1

        fabric = Fabric(telemetry=True)
        try:
            dataset = make_d1(real_rows=500, virtual_rows=500)
            fabric.populate(dataset, "src")
            elapsed, rows = fabric.v2s_load("src", 4, dataset.scale)
            assert rows == 500
            snapshot = fabric.metrics_snapshot(trace_buckets=20)
            assert snapshot.counter("v2s.rows_fetched") == 500
            assert "v2s.range_query" in snapshot.span_names()
            assert snapshot.traces  # one per Vertica node
            assert all(len(t.values) >= 20 for t in snapshot.traces)
        finally:
            telemetry.reset()


class TestS2VAcceptance:
    """The PR's acceptance scenario: S2V under FailureRatePolicy(0.2) with
    speculation must produce a snapshot whose counters equal the
    scheduler's per-task ground truth and whose spans cover all five
    phases."""

    def _run_save(self):
        from repro.connector import SimVerticaCluster
        from repro.connector.s2v import S2VWriter
        from repro.spark import SparkSession, StructField, StructType
        from repro.spark.faults import FailureRatePolicy

        env = Environment()
        registry = telemetry.install(MetricsRegistry(enabled=True).bind(env))
        policy = FailureRatePolicy(0.2)
        vc = SimVerticaCluster(env=env, num_nodes=4)
        spark = SparkSession(
            env=env,
            cluster=vc.sim_cluster,
            num_workers=8,
            fault_policy=policy,
            speculation=True,
        )
        schema = StructType(
            [StructField("id", "long"), StructField("val", "double")]
        )
        rows = [(i, float(i) * 0.25) for i in range(200)]
        df = spark.create_dataframe(rows, schema, num_partitions=8)
        writer = S2VWriter(
            spark, "overwrite",
            {"db": vc, "table": "dest", "numpartitions": 8}, df,
        )
        vc.run(writer._setup(), name="setup")
        rdd, num_tasks = writer._partitioned_rdd()
        thunks = [writer._make_task(rdd, i) for i in range(num_tasks)]
        job = spark.scheduler.submit(thunks, writer.job_name)
        env.run(job.done)
        result = vc.run(writer._finalize(job), name="finalize")
        env.run()  # drain any zombie duplicates completely
        return registry, policy, job, result

    def test_counters_match_scheduler_ground_truth(self):
        registry, policy, job, result = self._run_save()
        try:
            snapshot = registry.snapshot()
            assert result.status == "SUCCESS"
            assert result.rows_loaded == 200
            assert policy.injected  # the 20% rate actually fired
            assert snapshot.counter("spark.attempts_launched") == sum(
                task.attempts_started for task in job.tasks
            )
            assert snapshot.counter("spark.task_failures") == sum(
                task.failures for task in job.tasks
            )
            assert snapshot.counter("spark.attempts_speculative") == sum(
                1 for task in job.tasks if task.speculated
            )
            assert snapshot.counter("spark.task_failures_injected") == len(
                policy.injected
            )
        finally:
            telemetry.reset()

    def test_spans_cover_all_five_phases(self):
        registry, policy, job, result = self._run_save()
        try:
            names = registry.snapshot().span_names()
            for phase in ("s2v.phase1", "s2v.phase2", "s2v.phase3",
                          "s2v.phase4", "s2v.phase5"):
                assert phase in names, f"missing span for {phase}"
        finally:
            telemetry.reset()
