"""Tests for the COPY bulk-load path and VerticaCopyStream."""

import pytest

from repro.avrolite import Schema, encode_rows
from repro.vertica import VerticaDatabase
from repro.vertica.copyload import VerticaCopyStream, avro_schema_for_table
from repro.vertica.errors import CopyRejectError, SqlError


@pytest.fixture
def db():
    return VerticaDatabase(num_nodes=4)


@pytest.fixture
def session(db):
    s = db.connect()
    s.execute(
        "CREATE TABLE metrics (id INTEGER, value FLOAT, label VARCHAR(20)) "
        "SEGMENTED BY HASH(id) ALL NODES"
    )
    return s


def avro_payload(db, rows, codec="deflate"):
    table = db.catalog.table("metrics")
    return encode_rows(avro_schema_for_table(table), rows, codec=codec)


class TestCsvCopy:
    def test_basic_load(self, session):
        csv = "1,1.5,alpha\n2,2.5,beta\n3,,\n"
        session.execute("COPY metrics FROM STDIN", copy_data=csv)
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 3
        assert session.last_copy_result.loaded == 3
        assert session.last_copy_result.rejected == 0
        assert session.scalar("SELECT value FROM metrics WHERE id = 3") is None

    def test_custom_delimiter(self, session):
        session.execute(
            "COPY metrics FROM STDIN DELIMITER '|'", copy_data="1|1.5|alpha\n"
        )
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 1

    def test_blank_lines_skipped(self, session):
        session.execute("COPY metrics FROM STDIN", copy_data="1,1.0,a\n\n\n2,2.0,b\n")
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 2

    def test_bad_rows_rejected_within_tolerance(self, session):
        csv = "1,1.5,ok\nbad,row,here\n2,2.5,ok\nx,y,z\n"
        session.execute("COPY metrics FROM STDIN REJECTMAX 2", copy_data=csv)
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 2
        result = session.last_copy_result
        assert result.rejected == 2
        assert len(result.sample) == 2
        assert "not a" in result.sample[0].reason or "fields" in result.sample[0].reason

    def test_rejectmax_exceeded_fails_and_rolls_back(self, session):
        csv = "1,1.5,ok\nbad,row,here\nalso,bad,here\n"
        with pytest.raises(CopyRejectError) as info:
            session.execute("COPY metrics FROM STDIN REJECTMAX 1", copy_data=csv)
        assert info.value.rejected == 2
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 0

    def test_zero_tolerance_by_default(self, session):
        with pytest.raises(CopyRejectError):
            session.execute("COPY metrics FROM STDIN", copy_data="oops\n")

    def test_arity_mismatch_rejected(self, session):
        session.execute("COPY metrics FROM STDIN REJECTMAX 1", copy_data="1,2\n")
        assert session.last_copy_result.rejected == 1

    def test_missing_payload(self, session):
        with pytest.raises(SqlError):
            session.execute("COPY metrics FROM STDIN")


class TestAvroCopy:
    def test_round_trip(self, session, db):
        rows = [(1, 1.5, "alpha"), (2, 2.5, None), (3, None, "gamma")]
        session.execute(
            "COPY metrics FROM STDIN FORMAT AVRO", copy_data=avro_payload(db, rows)
        )
        result = session.execute("SELECT * FROM metrics ORDER BY id")
        assert result.rows == rows

    def test_type_mismatch_rejected(self, session, db):
        table = db.catalog.table("metrics")
        schema = Schema.record(
            "metrics",
            [
                ("id", Schema.primitive("string", nullable=True)),
                ("value", Schema.primitive("double", nullable=True)),
                ("label", Schema.primitive("string", nullable=True)),
            ],
        )
        payload = encode_rows(schema, [("not-an-int", 1.0, "x")])
        session.execute(
            "COPY metrics FROM STDIN FORMAT AVRO REJECTMAX 5", copy_data=payload
        )
        assert session.last_copy_result.rejected == 1
        assert session.last_copy_result.loaded == 0

    def test_garbage_payload(self, session):
        with pytest.raises(SqlError):
            session.execute(
                "COPY metrics FROM STDIN FORMAT AVRO", copy_data=b"not avro"
            )

    def test_avro_requires_bytes(self, session):
        with pytest.raises(SqlError):
            session.execute("COPY metrics FROM STDIN FORMAT AVRO", copy_data="text")

    def test_rows_routed_by_segmentation(self, session, db):
        rows = [(i, float(i), f"r{i}") for i in range(50)]
        session.execute(
            "COPY metrics FROM STDIN FORMAT AVRO", copy_data=avro_payload(db, rows)
        )
        table = db.catalog.table("metrics")
        epoch = db.epochs.current
        per_node = {
            node: db.storage[node].live_row_count("METRICS", epoch)
            for node in db.node_names
        }
        assert sum(per_node.values()) == 50
        # More than one node holds data (hash distributes).
        assert sum(1 for count in per_node.values() if count > 0) >= 2
        # And each node's rows hash into its own segment.
        from repro.vertica import vertica_hash

        for node in db.node_names:
            segment = table.ring.segment_for_node(node)
            for container in db.storage[node].table_containers("METRICS"):
                for index in container.live_rows(epoch):
                    row = container.row(index)
                    assert segment.lo <= vertica_hash(row["ID"]) < segment.hi


class TestCopyStream:
    def test_stream_multiple_chunks(self, session, db):
        stream = VerticaCopyStream(session, "metrics", reject_max=0)
        stream.add_avro(avro_payload(db, [(1, 1.0, "a")]))
        stream.add_avro(avro_payload(db, [(2, 2.0, "b"), (3, 3.0, "c")]))
        result = stream.execute()
        assert result.loaded == 3
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 3

    def test_stream_inside_transaction_rolls_back(self, session, db):
        session.execute("BEGIN")
        stream = VerticaCopyStream(session, "metrics")
        stream.add_avro(avro_payload(db, [(1, 1.0, "a")]))
        stream.execute()
        session.execute("ROLLBACK")
        assert session.scalar("SELECT COUNT(*) FROM metrics") == 0

    def test_stream_csv_format(self, session):
        stream = VerticaCopyStream(session, "metrics", file_format="CSV")
        stream.add_csv("1,1.0,a\n")
        assert stream.execute().loaded == 1

    def test_stream_format_mismatch(self, session):
        stream = VerticaCopyStream(session, "metrics")
        with pytest.raises(SqlError):
            stream.add_csv("1,1.0,a\n")

    def test_empty_stream_rejected(self, session):
        with pytest.raises(SqlError):
            VerticaCopyStream(session, "metrics").execute()

    def test_reject_accounting_across_chunks(self, session, db):
        stream = VerticaCopyStream(session, "metrics", reject_max=2, file_format="CSV")
        stream.add_csv("1,1.0,a\nbad,bad,bad\n")
        stream.add_csv("2,2.0,b\nalso,bad,here\n")
        result = stream.execute()
        assert result.loaded == 2
        assert result.rejected == 2
