"""Integration tests for the query engine through the session API."""

import pytest

from repro.vertica import HASH_SPACE, VerticaDatabase, vertica_hash
from repro.vertica.engine import HashRange, extract_hash_range
from repro.vertica.errors import CatalogError, SqlError
from repro.vertica.sql.parser import parse_expression


@pytest.fixture
def db():
    return VerticaDatabase(num_nodes=4)


@pytest.fixture
def session(db):
    return db.connect()


@pytest.fixture
def people(session):
    session.execute(
        "CREATE TABLE people (id INTEGER, name VARCHAR(40), age INTEGER, "
        "score FLOAT) SEGMENTED BY HASH(id) ALL NODES"
    )
    rows = [
        (1, "alice", 30, 1.5),
        (2, "bob", 25, 2.5),
        (3, "carol", 35, 3.5),
        (4, "dan", None, None),
        (5, "erin", 30, 5.5),
    ]
    values = ", ".join(
        f"({i}, '{n}', {a if a is not None else 'NULL'}, "
        f"{s if s is not None else 'NULL'})"
        for i, n, a, s in rows
    )
    session.execute(f"INSERT INTO people VALUES {values}")
    return session


class TestSelect:
    def test_select_star_order(self, people):
        result = people.execute("SELECT * FROM people ORDER BY id")
        assert result.columns == ["ID", "NAME", "AGE", "SCORE"]
        assert [r[0] for r in result.rows] == [1, 2, 3, 4, 5]

    def test_where_filters(self, people):
        result = people.execute("SELECT name FROM people WHERE age = 30 ORDER BY name")
        assert result.rows == [("alice",), ("erin",)]

    def test_null_where_excluded(self, people):
        result = people.execute("SELECT id FROM people WHERE age > 0")
        assert len(result.rows) == 4  # dan's NULL age excluded

    def test_projection_expression(self, people):
        result = people.execute("SELECT id * 10 AS tens FROM people WHERE id = 2")
        assert result.columns == ["TENS"]
        assert result.rows == [(20,)]

    def test_limit(self, people):
        result = people.execute("SELECT id FROM people ORDER BY id LIMIT 2")
        assert result.rows == [(1,), (2,)]

    def test_order_desc_nulls(self, people):
        result = people.execute("SELECT age FROM people ORDER BY age DESC")
        ages = [r[0] for r in result.rows]
        assert ages[0] == 35
        assert ages[-1] is None

    def test_select_without_from(self, session):
        assert session.scalar("SELECT 2 + 3") == 5

    def test_unknown_table(self, session):
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM missing")

    def test_unknown_column(self, people):
        with pytest.raises(SqlError):
            people.execute("SELECT nope FROM people")


class TestAggregates:
    def test_count_star(self, people):
        assert people.scalar("SELECT COUNT(*) FROM people") == 5

    def test_count_column_skips_nulls(self, people):
        assert people.scalar("SELECT COUNT(age) FROM people") == 4

    def test_sum_avg_min_max(self, people):
        result = people.execute(
            "SELECT SUM(age), AVG(age), MIN(age), MAX(age) FROM people"
        )
        assert result.rows == [(120, 30.0, 25, 35)]

    def test_count_distinct(self, people):
        assert people.scalar("SELECT COUNT(DISTINCT age) FROM people") == 3

    def test_aggregate_on_empty(self, people):
        result = people.execute("SELECT COUNT(*), SUM(age) FROM people WHERE id > 99")
        assert result.rows == [(0, None)]

    def test_group_by(self, people):
        result = people.execute(
            "SELECT age, COUNT(*) AS n FROM people WHERE age IS NOT NULL "
            "GROUP BY age ORDER BY age"
        )
        assert result.rows == [(25, 1), (30, 2), (35, 1)]

    def test_min_max_on_strings(self, people):
        result = people.execute("SELECT MIN(name), MAX(name) FROM people")
        assert result.rows == [("alice", "erin")]


class TestJoins:
    def test_inner_join(self, people):
        people.execute("CREATE TABLE pets (owner_id INTEGER, pet VARCHAR(20))")
        people.execute(
            "INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fish')"
        )
        result = people.execute(
            "SELECT name, pet FROM people JOIN pets ON id = owner_id "
            "ORDER BY name, pet"
        )
        assert result.rows == [("alice", "cat"), ("alice", "dog"), ("carol", "fish")]

    def test_join_with_aliases(self, people):
        people.execute("CREATE TABLE pets (owner_id INTEGER, pet VARCHAR(20))")
        people.execute("INSERT INTO pets VALUES (2, 'rat')")
        result = people.execute(
            "SELECT p.name, q.pet FROM people p JOIN pets q ON p.id = q.owner_id"
        )
        assert result.rows == [("bob", "rat")]

    def test_join_in_view_enables_pushdown(self, people):
        # §3.1.1: joins can be pushed down by pre-defining a view.
        people.execute("CREATE TABLE pets (owner_id INTEGER, pet VARCHAR(20))")
        people.execute("INSERT INTO pets VALUES (1, 'cat'), (3, 'fish')")
        people.execute(
            "CREATE VIEW owner_pets AS SELECT name, pet FROM people "
            "JOIN pets ON id = owner_id"
        )
        result = people.execute("SELECT * FROM owner_pets ORDER BY name")
        assert result.rows == [("alice", "cat"), ("carol", "fish")]


class TestViews:
    def test_simple_view(self, people):
        people.execute("CREATE VIEW adults AS SELECT id, name FROM people WHERE age >= 30")
        result = people.execute("SELECT name FROM adults ORDER BY name")
        assert result.rows == [("alice",), ("carol",), ("erin",)]

    def test_view_with_aggregation(self, people):
        people.execute(
            "CREATE VIEW age_counts AS SELECT age, COUNT(*) AS n FROM people "
            "WHERE age IS NOT NULL GROUP BY age"
        )
        result = people.execute("SELECT * FROM age_counts ORDER BY age")
        assert [r[1] for r in result.rows] == [1, 2, 1]

    def test_view_synthetic_hash_filter(self, people):
        # The connector's view-parallelism trick: tile the synthetic hash
        # space and check the union of parts equals the whole view.
        people.execute("CREATE VIEW v AS SELECT id, name FROM people")
        whole = people.execute("SELECT * FROM v ORDER BY id").rows
        parts = []
        bounds = [0, HASH_SPACE // 3, 2 * (HASH_SPACE // 3), HASH_SPACE]
        for lo, hi in zip(bounds, bounds[1:]):
            result = people.execute(
                f"SELECT * FROM v WHERE SYNTHETIC_HASH() >= {lo} "
                f"AND SYNTHETIC_HASH() < {hi}"
            )
            parts.extend(result.rows)
        assert sorted(parts) == sorted(whole)

    def test_drop_view(self, people):
        people.execute("CREATE VIEW v AS SELECT id FROM people")
        people.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            people.execute("SELECT * FROM v")


class TestSystemTables:
    def test_nodes(self, session, db):
        result = session.execute("SELECT node_name FROM v_catalog.nodes ORDER BY node_name")
        assert [r[0] for r in result.rows] == db.node_names

    def test_segments_cover_ring(self, people, db):
        result = people.execute(
            "SELECT segment_lower_bound, segment_upper_bound FROM "
            "v_catalog.segments WHERE table_name = 'PEOPLE' "
            "ORDER BY segment_lower_bound"
        )
        assert result.rows[0][0] == 0
        assert result.rows[-1][1] == HASH_SPACE
        for (_, hi), (lo, _) in zip(result.rows, result.rows[1:]):
            assert hi == lo

    def test_epochs_advance_on_commit(self, session):
        session.execute("CREATE TABLE t (a INTEGER)")
        before = session.scalar("SELECT current_epoch FROM v_catalog.epochs")
        session.execute("INSERT INTO t VALUES (1)")
        after = session.scalar("SELECT current_epoch FROM v_catalog.epochs")
        assert after == before + 1

    def test_tables_lists_segmentation(self, people):
        result = people.execute(
            "SELECT is_segmented, row_segmentation FROM v_catalog.tables "
            "WHERE table_name = 'PEOPLE'"
        )
        assert result.rows == [(True, "ID")]


class TestHashRangeQueries:
    def test_extract_range(self):
        where = parse_expression("HASH(ID) >= 100 AND HASH(ID) < 200 AND AGE > 1")
        hash_range = extract_hash_range(where, ["ID"])
        assert (hash_range.lo, hash_range.hi) == (100, 200)

    def test_extract_requires_matching_columns(self):
        where = parse_expression("HASH(OTHER) >= 100")
        hash_range = extract_hash_range(where, ["ID"])
        assert hash_range.is_full

    def test_extract_reversed_comparison(self):
        where = parse_expression("100 <= HASH(ID) AND 200 > HASH(ID)")
        hash_range = extract_hash_range(where, ["ID"])
        assert (hash_range.lo, hash_range.hi) == (100, 200)

    def test_extract_between(self):
        where = parse_expression("HASH(ID) BETWEEN 10 AND 19")
        hash_range = extract_hash_range(where, ["ID"])
        assert (hash_range.lo, hash_range.hi) == (10, 20)

    def test_disjunction_not_extracted(self):
        where = parse_expression("HASH(ID) >= 100 OR AGE > 1")
        assert extract_hash_range(where, ["ID"]).is_full

    def test_hash_range_union_reconstructs_table(self, people, db):
        table = db.catalog.table("people")
        collected = []
        for lo, hi, node in table.ring.split(8):
            result = people.execute(
                f"SELECT id FROM people WHERE HASH(id) >= {lo} AND HASH(id) < {hi}"
            )
            collected.extend(r[0] for r in result.rows)
        assert sorted(collected) == [1, 2, 3, 4, 5]

    def test_hash_range_scan_touches_single_node(self, people, db):
        table = db.catalog.table("people")
        segment = table.ring.segments[0]
        result = people.execute(
            f"SELECT id FROM people WHERE HASH(id) >= {segment.lo} "
            f"AND HASH(id) < {segment.hi}"
        )
        scanned_nodes = set(result.cost.node_rows_scanned)
        assert scanned_nodes <= {segment.node}

    def test_rows_live_on_hashed_node(self, people, db):
        table = db.catalog.table("people")
        result = people.execute("SELECT id FROM people")
        for node, nbytes in result.cost.node_output_bytes.items():
            assert nbytes > 0
        # every row's producing node matches the ring
        for row in result.rows:
            expected = table.ring.node_for(vertica_hash(row[0]))
            single = people.execute(f"SELECT id FROM people WHERE id = {row[0]}")
            assert list(single.cost.node_output_bytes) == [expected]


class TestUnsegmentedTables:
    def test_replicated_reads_have_one_copy(self, session, db):
        session.execute("CREATE TABLE u (a INTEGER) UNSEGMENTED ALL NODES")
        session.execute("INSERT INTO u VALUES (1), (2)")
        assert session.scalar("SELECT COUNT(*) FROM u") == 2
        # physically present on every node
        for node in db.node_names:
            assert db.storage[node].live_row_count("U", db.epochs.current) == 2

    def test_read_is_local_to_initiator(self, db):
        s1 = db.connect(db.node_names[2])
        s1.execute("CREATE TABLE u (a INTEGER) UNSEGMENTED ALL NODES")
        s1.execute("INSERT INTO u VALUES (1)")
        result = s1.execute("SELECT a FROM u")
        assert list(result.cost.node_output_bytes) == [db.node_names[2]]

    def test_update_applies_to_all_copies(self, session, db):
        session.execute("CREATE TABLE u (a INTEGER) UNSEGMENTED ALL NODES")
        session.execute("INSERT INTO u VALUES (1)")
        result = session.execute("UPDATE u SET a = 2 WHERE a = 1")
        assert result.rowcount == 1
        for node in db.node_names:
            other = db.connect(node)
            assert other.scalar("SELECT a FROM u") == 2

    def test_delete_applies_to_all_copies(self, session, db):
        session.execute("CREATE TABLE u (a INTEGER) UNSEGMENTED ALL NODES")
        session.execute("INSERT INTO u VALUES (1), (2)")
        session.execute("DELETE FROM u WHERE a = 1")
        for node in db.node_names:
            assert db.connect(node).scalar("SELECT COUNT(*) FROM u") == 1


class TestDml:
    def test_update_rowcount(self, people):
        result = people.execute("UPDATE people SET age = 31 WHERE age = 30")
        assert result.rowcount == 2
        assert people.scalar("SELECT COUNT(*) FROM people WHERE age = 31") == 2

    def test_update_no_match(self, people):
        assert people.execute("UPDATE people SET age = 1 WHERE id = 999").rowcount == 0

    def test_update_unknown_column(self, people):
        with pytest.raises(SqlError):
            people.execute("UPDATE people SET nope = 1")

    def test_delete_and_count(self, people):
        result = people.execute("DELETE FROM people WHERE age IS NULL")
        assert result.rowcount == 1
        assert people.scalar("SELECT COUNT(*) FROM people") == 4

    def test_insert_select(self, people):
        people.execute("CREATE TABLE people2 (id INTEGER, name VARCHAR(40), "
                       "age INTEGER, score FLOAT)")
        people.execute("INSERT INTO people2 SELECT * FROM people WHERE id <= 2")
        assert people.scalar("SELECT COUNT(*) FROM people2") == 2

    def test_insert_column_subset_defaults_null(self, people):
        people.execute("INSERT INTO people (id, name) VALUES (99, 'zed')")
        result = people.execute("SELECT age, score FROM people WHERE id = 99")
        assert result.rows == [(None, None)]

    def test_insert_type_error_aborts_statement(self, people):
        from repro.vertica.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            people.execute("INSERT INTO people VALUES ('x', 'y', 1, 1.0)")
        assert people.scalar("SELECT COUNT(*) FROM people") == 5

    def test_truncate(self, people):
        people.execute("TRUNCATE TABLE people")
        assert people.scalar("SELECT COUNT(*) FROM people") == 0


class TestEpochSnapshots:
    def test_at_epoch_reads_history(self, people, db):
        epoch_before = db.epochs.current
        people.execute("DELETE FROM people WHERE id = 1")
        people.execute("INSERT INTO people VALUES (6, 'frank', 1, 1.0)")
        latest = people.execute("SELECT COUNT(*) FROM people").scalar()
        historical = people.scalar(f"AT EPOCH {epoch_before} SELECT COUNT(*) FROM people")
        assert latest == 5
        assert historical == 5
        old_names = people.execute(
            f"AT EPOCH {epoch_before} SELECT name FROM people ORDER BY name"
        ).rows
        assert ("alice",) in old_names
        assert ("frank",) not in old_names

    def test_future_epoch_rejected(self, people, db):
        from repro.vertica.errors import TransactionError

        with pytest.raises(TransactionError):
            people.execute(f"AT EPOCH {db.epochs.current + 10} SELECT * FROM people")

    def test_snapshot_isolation_between_sessions(self, people, db):
        reader = db.connect(db.node_names[1])
        epoch = db.epochs.current
        people.execute("DELETE FROM people")
        count = reader.scalar(f"AT EPOCH {epoch} SELECT COUNT(*) FROM people")
        assert count == 5


class TestHaving:
    def test_having_on_alias(self, people):
        result = people.execute(
            "SELECT age, COUNT(*) AS n FROM people WHERE age IS NOT NULL "
            "GROUP BY age HAVING n > 1 ORDER BY age"
        )
        assert result.rows == [(30, 2)]

    def test_having_on_group_column(self, people):
        result = people.execute(
            "SELECT age, COUNT(*) AS n FROM people WHERE age IS NOT NULL "
            "GROUP BY age HAVING age >= 30 ORDER BY age"
        )
        assert result.rows == [(30, 2), (35, 1)]

    def test_having_filters_everything(self, people):
        result = people.execute(
            "SELECT age, COUNT(*) AS n FROM people GROUP BY age HAVING n > 99"
        )
        assert result.rows == []

    def test_having_inside_view(self, people):
        people.execute(
            "CREATE VIEW frequent AS SELECT age, COUNT(*) AS n FROM people "
            "WHERE age IS NOT NULL GROUP BY age HAVING n > 1"
        )
        assert people.execute("SELECT * FROM frequent").rows == [(30, 2)]
