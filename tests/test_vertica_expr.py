"""Unit tests for the expression evaluator (including 3-valued logic)."""

import pytest

from repro.vertica.errors import SqlError
from repro.vertica.expr import predicate_holds
from repro.vertica.sql.parser import parse_expression


def ev(text, row=None):
    return parse_expression(text).evaluate(row or {})


class TestArithmetic:
    def test_basic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 / 4") == 2  # integer division truncates
        assert ev("10.0 / 4") == 2.5
        assert ev("-7 / 2") == -3  # truncation toward zero
        assert ev("10 % 3") == 1
        assert ev("-5") == -5

    def test_division_by_zero(self):
        with pytest.raises(SqlError):
            ev("1 / 0")
        with pytest.raises(SqlError):
            ev("1 % 0")

    def test_null_propagation(self):
        assert ev("1 + NULL") is None
        assert ev("NULL * 2") is None

    def test_string_concat(self):
        assert ev("'a' || 'b'") == "ab"
        assert ev("'a' || NULL") is None


class TestComparison:
    def test_basic(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("3 <> 4") is True
        assert ev("3 != 3") is False
        assert ev("'abc' = 'abc'") is True

    def test_null_comparison_is_null(self):
        assert ev("1 = NULL") is None
        assert ev("NULL <> NULL") is None

    def test_incompatible_types(self):
        with pytest.raises(SqlError):
            ev("1 < 'a'")


class TestLogic:
    def test_kleene_and(self):
        assert ev("TRUE AND TRUE") is True
        assert ev("TRUE AND FALSE") is False
        assert ev("FALSE AND NULL") is False
        assert ev("TRUE AND NULL") is None

    def test_kleene_or(self):
        assert ev("FALSE OR TRUE") is True
        assert ev("FALSE OR NULL") is None
        assert ev("TRUE OR NULL") is True

    def test_not(self):
        assert ev("NOT TRUE") is False
        assert ev("NOT NULL") is None

    def test_precedence(self):
        # AND binds tighter than OR.
        assert ev("TRUE OR FALSE AND FALSE") is True


class TestPredicates:
    def test_is_null(self):
        assert ev("NULL IS NULL") is True
        assert ev("1 IS NULL") is False
        assert ev("1 IS NOT NULL") is True

    def test_in_list(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("5 IN (1, 2, 3)") is False
        assert ev("5 NOT IN (1, 2)") is True
        assert ev("NULL IN (1, 2)") is None
        assert ev("5 IN (1, NULL)") is None  # unknown membership

    def test_between(self):
        assert ev("2 BETWEEN 1 AND 3") is True
        assert ev("0 BETWEEN 1 AND 3") is False
        assert ev("2 NOT BETWEEN 1 AND 3") is False
        assert ev("NULL BETWEEN 1 AND 3") is None

    def test_like(self):
        assert ev("'hello' LIKE 'he%'") is True
        assert ev("'hello' LIKE 'h_llo'") is True
        assert ev("'hello' LIKE 'x%'") is False
        assert ev("'hello' NOT LIKE 'x%'") is True
        assert ev("NULL LIKE 'x%'") is None

    def test_like_escapes_regex_chars(self):
        assert ev("'a.b' LIKE 'a.b'") is True
        assert ev("'axb' LIKE 'a.b'") is False


class TestColumnsAndFunctions:
    def test_column_ref(self):
        assert ev("A + B", {"A": 1, "B": 2}) == 3

    def test_unknown_column(self):
        with pytest.raises(SqlError):
            ev("MISSING", {"A": 1})

    def test_functions(self):
        assert ev("ABS(-3)") == 3
        assert ev("MOD(10, 3)") == 1
        assert ev("LENGTH('abc')") == 3
        assert ev("UPPER('ab')") == "AB"
        assert ev("LOWER('AB')") == "ab"
        assert ev("FLOOR(1.7)") == 1
        assert ev("CEIL(1.2)") == 2
        assert ev("SQRT(9.0)") == 3.0
        assert ev("COALESCE(NULL, NULL, 5)") == 5

    def test_function_null_propagation(self):
        assert ev("ABS(NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(SqlError):
            parse_expression("NO_SUCH_FUNC(1)")

    def test_hash_matches_vertica_hash(self):
        from repro.vertica import vertica_hash

        assert ev("HASH(A)", {"A": 42}) == vertica_hash(42)
        assert ev("HASH(A, B)", {"A": 1, "B": "x"}) == vertica_hash(1, "x")

    def test_synthetic_hash_is_row_hash(self):
        from repro.vertica import vertica_hash

        row = {"B": 2, "A": 1}
        assert ev("SYNTHETIC_HASH()", row) == vertica_hash(1, 2)


class TestPredicateHolds:
    def test_true_only(self):
        assert predicate_holds(parse_expression("1 = 1"), {})
        assert not predicate_holds(parse_expression("1 = 2"), {})
        assert not predicate_holds(parse_expression("NULL = 1"), {})

    def test_none_predicate_accepts_all(self):
        assert predicate_holds(None, {})


class TestSqlRendering:
    @pytest.mark.parametrize("text", [
        "(A + 1)",
        "(A AND (B OR C))",
        "(A IS NULL)",
        "(A IN (1, 2))",
        "(A BETWEEN 1 AND 2)",
        "(A LIKE 'x%')",
        "HASH(A, B)",
        "(NOT A)",
    ])
    def test_round_trip_through_sql(self, text):
        expression = parse_expression(text)
        again = parse_expression(expression.sql())
        row = {"A": 1, "B": 2, "C": None}
        assert again.evaluate(row) == expression.evaluate(row)

    def test_string_literal_escaping(self):
        expression = parse_expression("'it''s'")
        assert expression.evaluate({}) == "it's"
        assert parse_expression(expression.sql()).evaluate({}) == "it's"
