"""Unit and property tests for the hash ring (the heart of V2S locality)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vertica import HASH_SPACE, HashRing, Segment, vertica_hash
from repro.vertica.errors import CatalogError
from repro.vertica.hashring import (
    ranges_are_disjoint_and_complete,
    synthetic_ring,
)

NODES = ["node0001", "node0002", "node0003", "node0004"]


class TestVerticaHash:
    def test_deterministic(self):
        assert vertica_hash(42, "x") == vertica_hash(42, "x")

    def test_in_range(self):
        for value in (0, -1, 1.5, "abc", None, True, b"bytes"):
            assert 0 <= vertica_hash(value) < HASH_SPACE

    def test_integral_float_equals_int(self):
        assert vertica_hash(7.0) == vertica_hash(7)

    def test_distinct_values_differ(self):
        hashes = {vertica_hash(i) for i in range(1000)}
        assert len(hashes) > 990  # collisions possible but rare

    def test_requires_values(self):
        with pytest.raises(TypeError):
            vertica_hash()

    def test_unhashable_type(self):
        with pytest.raises(TypeError):
            vertica_hash(object())

    @given(st.integers())
    @settings(max_examples=100, deadline=None)
    def test_hash_always_on_ring(self, value):
        assert 0 <= vertica_hash(value) < HASH_SPACE

    def test_roughly_uniform(self):
        ring = HashRing.even(NODES)
        counts = {n: 0 for n in NODES}
        for i in range(4000):
            counts[ring.node_for(vertica_hash(i))] += 1
        for count in counts.values():
            assert 700 < count < 1300


class TestSegment:
    def test_contains(self):
        segment = Segment(10, 20, "n")
        assert segment.contains(10)
        assert segment.contains(19)
        assert not segment.contains(20)
        assert not segment.contains(9)

    def test_invalid_range(self):
        with pytest.raises(CatalogError):
            Segment(20, 10, "n")
        with pytest.raises(CatalogError):
            Segment(0, HASH_SPACE + 1, "n")


class TestHashRing:
    def test_even_covers_space(self):
        ring = HashRing.even(NODES)
        assert ring.segments[0].lo == 0
        assert ring.segments[-1].hi == HASH_SPACE
        assert ring.nodes == NODES

    def test_gap_rejected(self):
        with pytest.raises(CatalogError):
            HashRing([Segment(0, 10, "a"), Segment(11, HASH_SPACE, "b")])

    def test_partial_coverage_rejected(self):
        with pytest.raises(CatalogError):
            HashRing([Segment(5, HASH_SPACE, "a")])

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            HashRing([])

    def test_node_for_boundaries(self):
        ring = HashRing.even(["a", "b"])
        half = HASH_SPACE // 2
        assert ring.node_for(0) == "a"
        assert ring.node_for(half - 1) == "a"
        assert ring.node_for(half) == "b"
        assert ring.node_for(HASH_SPACE - 1) == "b"

    def test_segment_for_node(self):
        ring = HashRing.even(NODES)
        assert ring.segment_for_node("node0002").node == "node0002"
        with pytest.raises(CatalogError):
            ring.segment_for_node("nope")


class TestSplit:
    """§3.1.2/Figure 4: partition queries must tile the ring exactly."""

    @pytest.mark.parametrize("partitions", [1, 2, 3, 4, 5, 8, 16, 37, 128, 256])
    def test_ranges_disjoint_and_complete(self, partitions):
        ring = HashRing.even(NODES)
        ranges = ring.split(partitions)
        assert ranges_are_disjoint_and_complete([(lo, hi) for lo, hi, __ in ranges])

    @pytest.mark.parametrize("partitions", [4, 8, 128])
    def test_ranges_respect_segment_boundaries(self, partitions):
        ring = HashRing.even(NODES)
        for lo, hi, node in ring.split(partitions):
            segment = ring.segment_for_node(node)
            assert segment.lo <= lo < hi <= segment.hi

    def test_figure4a_two_partitions_get_two_segments_each(self):
        ring = HashRing.even(NODES)
        plan = ring.partition_plan(2)
        assert len(plan) == 2
        assert all(len(task_ranges) == 2 for task_ranges in plan)
        nodes_per_task = [sorted({node for __, __, node in task}) for task in plan]
        assert nodes_per_task[0] != nodes_per_task[1]

    def test_figure4b_eight_partitions_get_half_segment_each(self):
        ring = HashRing.even(NODES)
        plan = ring.partition_plan(8)
        assert len(plan) == 8
        for task_ranges in plan:
            assert len(task_ranges) == 1
            lo, hi, node = task_ranges[0]
            segment = ring.segment_for_node(node)
            assert (hi - lo) * 2 == pytest.approx(segment.hi - segment.lo, abs=2)

    def test_plan_covers_space_for_any_partition_count(self):
        ring = HashRing.even(NODES)
        for partitions in (1, 3, 7, 12, 200):
            plan = ring.partition_plan(partitions)
            assert len(plan) == partitions
            flat = [(lo, hi) for task in plan for lo, hi, __ in task]
            assert ranges_are_disjoint_and_complete(flat)

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_plan_tiles_ring(self, num_nodes, partitions):
        ring = HashRing.even([f"n{i}" for i in range(num_nodes)])
        plan = ring.partition_plan(partitions)
        assert len(plan) == partitions
        flat = [(lo, hi) for task in plan for lo, hi, __ in task]
        assert ranges_are_disjoint_and_complete(flat)
        # Every range stays on a single node's segment.
        for task in plan:
            for lo, hi, node in task:
                segment = ring.segment_for_node(node)
                assert segment.lo <= lo < hi <= segment.hi

    def test_invalid_partition_count(self):
        with pytest.raises(CatalogError):
            HashRing.even(NODES).split(0)


class TestSyntheticRing:
    def test_even_over_nodes(self):
        ring = synthetic_ring(NODES)
        assert ring.nodes == NODES
        assert ranges_are_disjoint_and_complete(
            [(s.lo, s.hi) for s in ring.segments]
        )


def test_ranges_check_rejects_overlap():
    assert not ranges_are_disjoint_and_complete([(0, 10), (5, HASH_SPACE)])
    assert not ranges_are_disjoint_and_complete([])
    assert ranges_are_disjoint_and_complete([(0, HASH_SPACE)])
