"""Tests for the DFS, UDx registry, and in-database scoring plumbing."""

import pytest

from repro.vertica import VerticaDatabase
from repro.vertica.dfs import DistributedFileSystem
from repro.vertica.errors import CatalogError, SqlError
from repro.vertica.udx import UdxRegistry


class TestDfs:
    def test_write_read(self):
        dfs = DistributedFileSystem(["a", "b"])
        dfs.write("models/m1.pmml", b"<PMML/>")
        assert dfs.read("models/m1.pmml") == b"<PMML/>"
        assert dfs.exists("models/m1.pmml")
        assert dfs.size("models/m1.pmml") == 7

    def test_owner_node_is_stable(self):
        dfs = DistributedFileSystem(["a", "b", "c"])
        dfs.write("x", b"1")
        assert dfs.owner_node("x") == dfs.owner_node("x")
        assert dfs.owner_node("x") in ("a", "b", "c")

    def test_no_overwrite_by_default(self):
        dfs = DistributedFileSystem(["a"])
        dfs.write("x", b"1")
        with pytest.raises(CatalogError):
            dfs.write("x", b"2")
        dfs.write("x", b"2", overwrite=True)
        assert dfs.read("x") == b"2"

    def test_delete_and_list(self):
        dfs = DistributedFileSystem(["a"])
        dfs.write("models/m1", b"1")
        dfs.write("models/m2", b"2")
        dfs.write("other", b"3")
        assert dfs.list("models/") == ["models/m1", "models/m2"]
        dfs.delete("models/m1")
        assert dfs.list("models/") == ["models/m2"]

    def test_missing_file(self):
        dfs = DistributedFileSystem(["a"])
        with pytest.raises(CatalogError):
            dfs.read("nope")
        with pytest.raises(CatalogError):
            dfs.delete("nope")

    def test_invalid_path(self):
        dfs = DistributedFileSystem(["a"])
        with pytest.raises(CatalogError):
            dfs.write("", b"1")
        with pytest.raises(CatalogError):
            dfs.write("dir/", b"1")


class TestUdxRegistry:
    def test_register_and_lookup(self):
        registry = UdxRegistry()
        registry.register("double_it", lambda args, params: args[0] * 2)
        assert registry.lookup("DOUBLE_IT")([21], {}) == 42
        assert registry.is_registered("double_it")
        assert registry.names() == ["DOUBLE_IT"]

    def test_duplicate_rejected(self):
        registry = UdxRegistry()
        registry.register("f", lambda a, p: 1)
        with pytest.raises(SqlError):
            registry.register("F", lambda a, p: 2)
        registry.register("F", lambda a, p: 2, replace=True)

    def test_unknown_lookup(self):
        with pytest.raises(SqlError):
            UdxRegistry().lookup("nope")

    def test_unregister(self):
        registry = UdxRegistry()
        registry.register("f", lambda a, p: 1)
        registry.unregister("f")
        assert not registry.is_registered("f")


class TestUdxInSql:
    def test_udf_invocation_with_parameters(self):
        db = VerticaDatabase(num_nodes=2)
        db.udx.register(
            "scale", lambda args, params: args[0] * params.get("factor", 1)
        )
        s = db.connect()
        s.execute("CREATE TABLE t (x INTEGER)")
        s.execute("INSERT INTO t VALUES (1), (2), (3)")
        result = s.execute(
            "SELECT SCALE(x USING PARAMETERS factor=10) AS scaled FROM t ORDER BY scaled"
        )
        assert result.rows == [(10,), (20,), (30,)]

    def test_udf_multiple_args(self):
        db = VerticaDatabase(num_nodes=1)
        db.udx.register("addup", lambda args, params: sum(args))
        s = db.connect()
        s.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        s.execute("INSERT INTO t VALUES (1, 2)")
        assert s.scalar("SELECT ADDUP(a, b USING PARAMETERS dummy=1) FROM t") == 3

    def test_unregistered_udf_fails(self):
        db = VerticaDatabase(num_nodes=1)
        s = db.connect()
        s.execute("CREATE TABLE t (a INTEGER)")
        s.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(SqlError):
            s.execute("SELECT NOPE(a USING PARAMETERS x=1) FROM t")
