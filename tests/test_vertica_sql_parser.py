"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.vertica.errors import SqlError
from repro.vertica.sql import ast, parse_statement, tokenize
from repro.vertica.sql.parser import parse_expression


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("SELECT a, 1.5 FROM t")]
        assert kinds == ["IDENT", "IDENT", "OP", "NUMBER", "IDENT", "IDENT", "EOF"]

    def test_identifiers_uppercased_raw_preserved(self):
        token = tokenize("MyTable")[0]
        assert token.text == "MYTABLE"
        assert token.raw == "MyTable"

    def test_string_with_escape(self):
        token = tokenize("'it''s'")[0]
        assert token.kind == "STRING"
        assert token.text == "it's"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing\n + /* inline */ 2")
        assert [t.text for t in tokens if t.kind != "EOF"] == ["SELECT", "1", "+", "2"]

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_unterminated_comment(self):
        with pytest.raises(SqlError):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a <> b <= c >= d != e || f")]
        assert "<>" in texts and "<=" in texts and ">=" in texts
        assert "!=" in texts and "||" in texts

    def test_scientific_number(self):
        token = tokenize("1.5e-3")[0]
        assert token.kind == "NUMBER"
        assert token.text == "1.5e-3"


class TestCreateTable:
    def test_columns_and_segmentation(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, b FLOAT, c VARCHAR(20)) "
            "SEGMENTED BY HASH(a, b) ALL NODES"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["A", "B", "C"]
        assert stmt.segmented_by == ["A", "B"]
        assert not stmt.unsegmented

    def test_unsegmented(self):
        stmt = parse_statement("CREATE TABLE t (a INT) UNSEGMENTED ALL NODES")
        assert stmt.unsegmented

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_double_precision(self):
        stmt = parse_statement("CREATE TABLE t (a DOUBLE PRECISION)")
        assert repr(stmt.columns[0].sql_type) == "FLOAT"

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
        assert isinstance(stmt, ast.CreateView)
        assert stmt.view == "V"
        assert stmt.query.where is not None

    def test_create_or_replace_view(self):
        stmt = parse_statement("CREATE OR REPLACE VIEW v AS SELECT 1")
        assert stmt.or_replace


class TestDdlMisc:
    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.if_exists

    def test_drop_view(self):
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)

    def test_rename(self):
        stmt = parse_statement("ALTER TABLE a RENAME TO b")
        assert (stmt.table, stmt.new_name) == ("A", "B")

    def test_truncate(self):
        assert parse_statement("TRUNCATE TABLE t").table == "T"


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert isinstance(stmt, ast.InsertValues)
        assert stmt.columns == ["A", "B"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s WHERE a > 0")
        assert isinstance(stmt, ast.InsertSelect)

    def test_update(self):
        stmt = parse_statement("UPDATE t SET done = TRUE WHERE id = 3 AND done = FALSE")
        assert isinstance(stmt, ast.Update)
        assert stmt.assignments[0][0] == "DONE"
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a IS NULL")
        assert isinstance(stmt, ast.Delete)

    def test_insert_requires_values_or_select(self):
        with pytest.raises(SqlError):
            parse_statement("INSERT INTO t")


class TestSelect:
    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.items[0].star
        assert stmt.source.name == "T"

    def test_where_order_limit(self):
        stmt = parse_statement(
            "SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a DESC, b LIMIT 10"
        )
        assert stmt.items[1].alias == "BEE"
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 10

    def test_aggregates(self):
        stmt = parse_statement("SELECT COUNT(*), SUM(a), AVG(b), MIN(a), MAX(a) FROM t")
        assert stmt.items[0].aggregate == "COUNT"
        assert stmt.items[0].aggregate_arg is None
        assert stmt.items[1].aggregate == "SUM"

    def test_count_distinct(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].distinct

    def test_group_by(self):
        stmt = parse_statement("SELECT a, COUNT(*) FROM t GROUP BY a")
        assert len(stmt.group_by) == 1

    def test_join(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.id = b.id WHERE a.x > 0"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.name == "B"

    def test_table_alias(self):
        stmt = parse_statement("SELECT t.a FROM mytable t")
        assert stmt.source.alias == "T"

    def test_at_epoch_prefix(self):
        stmt = parse_statement("AT EPOCH 7 SELECT * FROM t")
        assert stmt.at_epoch == 7

    def test_at_epoch_latest(self):
        stmt = parse_statement("AT EPOCH LATEST SELECT * FROM t")
        assert stmt.at_epoch is None

    def test_system_table_name(self):
        stmt = parse_statement("SELECT node_name FROM v_catalog.nodes")
        assert stmt.source.name == "V_CATALOG.NODES"

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 1")
        assert stmt.source is None

    def test_udf_with_parameters(self):
        stmt = parse_statement(
            "SELECT PMMLPredict(a, b USING PARAMETERS model_name='m') FROM t"
        )
        item = stmt.items[0]
        assert item.udf == "PMMLPREDICT"
        assert len(item.udf_args) == 2
        assert item.parameters == {"model_name": "m"}

    def test_builtin_function_is_expression(self):
        stmt = parse_statement("SELECT HASH(a) FROM t")
        assert stmt.items[0].udf == ""
        assert stmt.items[0].expression is not None

    def test_hash_range_query_shape(self):
        # The exact query V2S formulates per task.
        stmt = parse_statement(
            "SELECT * FROM t WHERE HASH(a, b) >= 10 AND HASH(a, b) < 20"
        )
        assert stmt.where is not None

    def test_count_star_with_alias(self):
        stmt = parse_statement("SELECT COUNT(*) AS n FROM t")
        assert stmt.items[0].alias == "N"


class TestCopy:
    def test_defaults(self):
        stmt = parse_statement("COPY t FROM STDIN")
        assert stmt.file_format == "CSV"
        assert stmt.reject_max is None

    def test_options(self):
        stmt = parse_statement(
            "COPY t FROM STDIN FORMAT AVRO REJECTMAX 50 DIRECT"
        )
        assert stmt.file_format == "AVRO"
        assert stmt.reject_max == 50
        assert stmt.direct

    def test_delimiter(self):
        stmt = parse_statement("COPY t FROM STDIN DELIMITER '|'")
        assert stmt.delimiter == "|"

    def test_file_source(self):
        stmt = parse_statement("COPY t FROM '/data/part1.csv'")
        assert stmt.source == "/data/part1.csv"

    def test_bad_format(self):
        with pytest.raises(SqlError):
            parse_statement("COPY t FROM STDIN FORMAT PARQUET")


class TestTransactions:
    def test_begin_commit_rollback(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginTransaction)
        assert isinstance(parse_statement("START TRANSACTION"), ast.BeginTransaction)
        assert isinstance(parse_statement("COMMIT"), ast.CommitTransaction)
        assert isinstance(parse_statement("ROLLBACK"), ast.RollbackTransaction)
        assert isinstance(parse_statement("ABORT"), ast.RollbackTransaction)


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELEC 1",
        "SELECT FROM t",
        "CREATE TABLE t",
        "UPDATE t",
        "1 + 1",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t LIMIT x",
        "SELECT * FROM t garbage garbage",
    ])
    def test_rejected(self, sql):
        with pytest.raises(SqlError):
            parse_statement(sql)

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT 1;")

    def test_expression_parser_rejects_trailing(self):
        with pytest.raises(SqlError):
            parse_expression("1 + 1 extra extra")
