"""Tests for optimizer statistics: ANALYZE, histograms, lifecycle.

The stats subsystem is advisory — the differential suite proves plans
never change answers — so these tests pin the numbers themselves: what a
full collect computes, how COPY maintains them incrementally, when
mergeout refreshes them, and how they surface through the
``V_CATALOG.COLUMN_STATISTICS`` system table.
"""

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry
from repro.vertica import VerticaDatabase
from repro.vertica.errors import SqlError
from repro.vertica.stats import (
    DEFAULT_BUCKETS,
    ColumnStats,
    HistogramBucket,
    _build_histogram,
    collect_table_stats,
    update_stats_for_load,
)


@pytest.fixture
def db():
    database = VerticaDatabase(num_nodes=4)
    session = database.connect()
    session.execute(
        "CREATE TABLE m (a INTEGER, b FLOAT, c VARCHAR(10)) "
        "SEGMENTED BY HASH(a) ALL NODES"
    )
    session.execute(
        "INSERT INTO m VALUES "
        + ", ".join(f"({i}, {i}.25, 'tag{i % 4}')" for i in range(20))
        + ", (NULL, NULL, NULL)"
    )
    return database


class TestCollection:
    def test_analyze_collects_counts_ndv_and_bounds(self, db):
        session = db.connect()
        result = session.execute("ANALYZE m")
        assert result.columns == ["TABLE_NAME", "ROW_COUNT", "COLUMNS_ANALYZED"]
        assert result.rows == [("M", 21, 3)]
        stats = db.catalog.statistics["M"]
        a = stats.column("a")
        assert (a.row_count, a.null_count, a.ndv) == (21, 1, 20)
        assert (a.min_value, a.max_value) == (0, 19)
        c = stats.column("c")
        assert c.ndv == 4
        assert c.histogram == []  # strings have no numeric histogram

    def test_analyze_statistics_keyword_and_buckets(self, db):
        session = db.connect()
        session.execute("ANALYZE STATISTICS m WITH 4 BUCKETS")
        stats = db.catalog.statistics["M"]
        assert stats.buckets == 4
        assert len(stats.column("b").histogram) == 4

    def test_analyze_rejects_bad_buckets(self, db):
        session = db.connect()
        with pytest.raises(SqlError, match="bucket count"):
            session.execute("ANALYZE m WITH 0 BUCKETS")

    def test_analyze_unknown_table(self, db):
        from repro.vertica.errors import CatalogError

        with pytest.raises(CatalogError):
            db.connect().execute("ANALYZE nope")

    def test_analyze_counts_telemetry(self, db):
        telemetry.install(MetricsRegistry(enabled=True))
        try:
            db.connect().execute("ANALYZE m")
            assert telemetry.counter("vertica.queries.analyze").value == 1.0
        finally:
            telemetry.reset()

    def test_collect_sees_only_committed_rows(self, db):
        txn = db.begin()
        db.engine.insert_rows(
            "M", [{"A": 99, "B": 1.0, "C": "wos"}], txn
        )
        stats = collect_table_stats(db, "M")
        assert stats.row_count == 21  # the uncommitted row is invisible
        txn.abort()


class TestHistogram:
    def test_equi_width_buckets_cover_the_range(self):
        histogram = _build_histogram(list(range(0, 100)), 10)
        assert len(histogram) == 10
        assert histogram[0].lo == 0.0
        assert histogram[-1].hi == 99.0
        assert sum(b.count for b in histogram) == 100

    def test_max_value_lands_in_last_bucket(self):
        histogram = _build_histogram([0, 5, 10], 5)
        assert histogram[-1].count >= 1

    def test_constant_column_is_one_bucket(self):
        histogram = _build_histogram([7, 7, 7], 4)
        assert len(histogram) == 1
        assert histogram[0].count == 3

    def test_range_selectivity_interpolates(self):
        stats = ColumnStats(
            column="X",
            row_count=100,
            ndv=100,
            min_value=0,
            max_value=100,
            histogram=[HistogramBucket(lo=0.0, hi=100.0, count=100)],
        )
        assert stats.range_selectivity("<", 50) == pytest.approx(0.5)
        assert stats.range_selectivity(">", 75) == pytest.approx(0.25)

    def test_selectivity_fallbacks(self):
        stats = ColumnStats(column="X")
        assert stats.equality_selectivity() == 0.1  # no NDV yet
        assert stats.range_selectivity("<", "zz") == pytest.approx(1 / 3)


class TestIncrementalMaintenance:
    def test_copy_updates_analyzed_tables(self, db):
        session = db.connect()
        session.execute("ANALYZE m")
        session.execute(
            "COPY m FROM STDIN", copy_data="40,40.5,fresh\n41,41.5,fresh\n"
        )
        stats = db.catalog.statistics["M"]
        assert stats.row_count == 23
        a = stats.column("a")
        assert a.row_count == 23
        assert a.max_value == 41  # min/max stay exact incrementally
        assert a.ndv == 20  # NDV is stale until the next full collect

    def test_copy_is_noop_before_first_analyze(self, db):
        session = db.connect()
        session.execute("COPY m FROM STDIN", copy_data="50,50.5,x\n")
        assert "M" not in db.catalog.statistics

    def test_update_helper_ignores_unanalyzed_tables(self, db):
        update_stats_for_load(db, "m", [{"A": 1, "B": 1.0, "C": "x"}])
        assert db.catalog.statistics == {}

    def test_mergeout_refreshes_stale_ndv(self, db):
        session = db.connect()
        session.execute("ANALYZE m")
        session.execute(
            "COPY m FROM STDIN", copy_data="60,60.5,zed\n61,61.5,zed\n"
        )
        assert db.catalog.statistics["M"].column("a").ndv == 20  # stale
        db.tuple_mover.advance_ahm(db.epochs.current)
        db.tuple_mover.mergeout()
        refreshed = db.catalog.statistics["M"]
        assert refreshed.column("a").ndv == 22
        assert refreshed.buckets == DEFAULT_BUCKETS

    def test_mergeout_skips_never_analyzed_tables(self, db):
        db.tuple_mover.advance_ahm(db.epochs.current)
        db.tuple_mover.mergeout()
        assert "M" not in db.catalog.statistics


class TestLifecycle:
    def test_drop_table_drops_statistics(self, db):
        session = db.connect()
        session.execute("ANALYZE m")
        session.execute("DROP TABLE m")
        assert "M" not in db.catalog.statistics

    def test_rename_table_retargets_statistics(self, db):
        session = db.connect()
        session.execute("ANALYZE m")
        session.execute("ALTER TABLE m RENAME TO m2")
        assert "M" not in db.catalog.statistics
        stats = db.catalog.statistics["M2"]
        assert stats.table == "M2"
        assert stats.row_count == 21

    def test_system_table_exposes_statistics(self, db):
        session = db.connect()
        session.execute("ANALYZE m")
        rows = session.execute(
            "SELECT table_name, column_name, row_count, ndv "
            "FROM v_catalog.column_statistics ORDER BY column_name"
        ).rows
        assert rows == [
            ("M", "A", 21, 20),
            ("M", "B", 21, 20),
            ("M", "C", 21, 4),
        ]

    def test_system_table_empty_before_analyze(self, db):
        rows = db.connect().execute(
            "SELECT * FROM v_catalog.column_statistics"
        ).rows
        assert rows == []
