"""Tests for the Tuple Mover: mergeout, purge, and the AHM contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vertica import VerticaDatabase
from repro.vertica.errors import TransactionError
from repro.vertica.tuplemover import storage_container_stats


@pytest.fixture
def db():
    return VerticaDatabase(num_nodes=2)


@pytest.fixture
def session(db):
    s = db.connect()
    s.execute("CREATE TABLE t (a INTEGER, b VARCHAR(20)) SEGMENTED BY HASH(a) ALL NODES")
    return s


def container_count(db, table="T"):
    return sum(
        len(storage.table_containers(table)) for storage in db.storage.values()
    )


def insert_batches(session, count, start=0):
    for i in range(start, start + count):
        session.execute(f"INSERT INTO t VALUES ({i}, 'r{i}')")


class TestMergeout:
    def test_fragmentation_then_mergeout(self, db, session):
        insert_batches(session, 12)  # 12 commits -> many tiny containers
        before = container_count(db)
        assert before >= 12
        db.tuple_mover.advance_ahm()
        merged = db.tuple_mover.mergeout("t")
        assert merged > 0
        after = container_count(db)
        assert after <= len(db.node_names)  # one per node at most
        assert session.scalar("SELECT COUNT(*) FROM t") == 12

    def test_mergeout_preserves_all_data(self, db, session):
        insert_batches(session, 20)
        expected = sorted(session.execute("SELECT * FROM t").rows)
        db.tuple_mover.advance_ahm()
        db.tuple_mover.mergeout()
        assert sorted(session.execute("SELECT * FROM t").rows) == expected

    def test_mergeout_without_ahm_is_noop(self, db, session):
        insert_batches(session, 8)
        # AHM still at 0: nothing is old enough to merge.
        assert db.tuple_mover.mergeout("t") == 0

    def test_containers_above_ahm_stay_separate(self, db, session):
        insert_batches(session, 5)
        db.tuple_mover.advance_ahm()
        insert_batches(session, 5, start=100)  # newer than the AHM
        db.tuple_mover.mergeout("t")
        # Old containers merged; the 5 new ones are untouched.
        assert session.scalar("SELECT COUNT(*) FROM t") == 10
        assert container_count(db) >= 5

    def test_purges_deleted_rows_below_ahm(self, db, session):
        insert_batches(session, 10)
        session.execute("DELETE FROM t WHERE a < 5")
        db.tuple_mover.advance_ahm()
        db.tuple_mover.mergeout("t")
        assert db.tuple_mover.rows_purged == 5
        assert session.scalar("SELECT COUNT(*) FROM t") == 5
        # The purged rows are physically gone.
        physical = sum(
            container.nrows
            for storage in db.storage.values()
            for container in storage.table_containers("T")
        )
        assert physical == 5

    def test_recent_deletes_survive_mergeout(self, db, session):
        insert_batches(session, 6)
        db.tuple_mover.advance_ahm()
        epoch_before_delete = db.epochs.current
        session.execute("DELETE FROM t WHERE a = 0")
        # The delete is newer than the AHM: mergeout must keep the delete
        # vector so the historical epoch still sees the row.
        db.tuple_mover.mergeout("t")
        assert session.scalar("SELECT COUNT(*) FROM t") == 5
        historical = session.scalar(
            f"AT EPOCH {epoch_before_delete} SELECT COUNT(*) FROM t"
        )
        assert historical == 6

    def test_locked_table_skipped(self, db, session):
        insert_batches(session, 6)
        db.tuple_mover.advance_ahm()
        other = db.connect(db.node_names[1])
        other.execute("BEGIN")
        other.execute("UPDATE t SET b = 'x' WHERE a = 1")
        assert db.tuple_mover.mergeout("t") == 0  # skipped while locked
        other.execute("COMMIT")
        assert db.tuple_mover.mergeout("t") > 0


class TestAhm:
    def test_advance_to_current(self, db, session):
        insert_batches(session, 3)
        assert db.tuple_mover.advance_ahm() == db.epochs.current

    def test_cannot_exceed_current_epoch(self, db):
        with pytest.raises(TransactionError):
            db.tuple_mover.advance_ahm(db.epochs.current + 5)

    def test_cannot_move_backwards(self, db, session):
        insert_batches(session, 3)
        db.tuple_mover.advance_ahm()
        with pytest.raises(TransactionError):
            db.tuple_mover.advance_ahm(1)

    def test_queries_below_ahm_rejected(self, db, session):
        insert_batches(session, 5)
        old_epoch = db.epochs.current - 3
        db.tuple_mover.advance_ahm()
        with pytest.raises(TransactionError):
            session.execute(f"AT EPOCH {old_epoch} SELECT COUNT(*) FROM t")

    def test_queries_at_or_above_ahm_allowed(self, db, session):
        insert_batches(session, 5)
        db.tuple_mover.advance_ahm()
        ahm = db.tuple_mover.ahm_epoch
        insert_batches(session, 2, start=50)
        assert session.scalar(f"AT EPOCH {ahm} SELECT COUNT(*) FROM t") == 5


class TestStorageContainersSystemTable:
    def test_stats_via_sql(self, db, session):
        insert_batches(session, 6)
        result = session.execute(
            "SELECT node_name, table_name, container_count, live_rows "
            "FROM v_monitor.storage_containers ORDER BY node_name"
        )
        tables = {row[1] for row in result.rows}
        assert "T" in tables
        assert sum(row[3] for row in result.rows if row[1] == "T") == 6

    def test_stats_shrink_after_mergeout(self, db, session):
        insert_batches(session, 10)
        before = session.execute(
            "SELECT SUM(container_count) FROM v_monitor.storage_containers "
            "WHERE table_name = 'T'"
        ).scalar()
        db.tuple_mover.advance_ahm()
        db.tuple_mover.mergeout("t")
        after = session.execute(
            "SELECT SUM(container_count) FROM v_monitor.storage_containers "
            "WHERE table_name = 'T'"
        ).scalar()
        assert after < before

    def test_helper_matches_sql(self, db, session):
        insert_batches(session, 4)
        stats = storage_container_stats(db)
        total_live = sum(rows for __, table, __, rows in stats if table == "T")
        assert total_live == 4


class TestMergeoutInvariantProperty:
    @given(
        deletes=st.lists(st.integers(min_value=0, max_value=14), max_size=8),
        batches=st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=25, deadline=None)
    def test_mergeout_never_changes_visible_results(self, deletes, batches):
        db = VerticaDatabase(num_nodes=2)
        session = db.connect()
        session.execute(
            "CREATE TABLE t (a INTEGER, b VARCHAR(20)) "
            "SEGMENTED BY HASH(a) ALL NODES"
        )
        for i in range(batches):
            session.execute(f"INSERT INTO t VALUES ({i}, 'r{i}')")
        for target in deletes:
            session.execute(f"DELETE FROM t WHERE a = {target}")
        db.tuple_mover.advance_ahm(max(0, db.epochs.current - 2))
        visible_epochs = range(db.tuple_mover.ahm_epoch, db.epochs.current + 1)
        before = {
            e: sorted(session.execute(f"AT EPOCH {e} SELECT * FROM t").rows)
            for e in visible_epochs
        }
        db.tuple_mover.mergeout()
        after = {
            e: sorted(session.execute(f"AT EPOCH {e} SELECT * FROM t").rows)
            for e in visible_epochs
        }
        assert before == after
