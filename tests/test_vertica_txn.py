"""Tests for transactions, locking, epochs and session semantics —
the ACID machinery the connector's exactly-once guarantee rests on."""

import pytest

from repro.vertica import VerticaDatabase
from repro.vertica.errors import (
    ConnectionLimitError,
    LockContention,
    TransactionError,
)


@pytest.fixture
def db():
    return VerticaDatabase(num_nodes=4)


@pytest.fixture
def session(db):
    s = db.connect()
    s.execute("CREATE TABLE t (a INTEGER, b VARCHAR(20))")
    return s


class TestAutocommit:
    def test_each_statement_commits(self, session, db):
        session.execute("INSERT INTO t VALUES (1, 'x')")
        other = db.connect(db.node_names[1])
        assert other.scalar("SELECT COUNT(*) FROM t") == 1

    def test_failed_statement_rolls_back(self, session):
        from repro.vertica.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            session.execute("INSERT INTO t VALUES (1, 'ok'), ('bad', 2)")
        assert session.scalar("SELECT COUNT(*) FROM t") == 0


class TestExplicitTransactions:
    def test_uncommitted_invisible_to_others(self, session, db):
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        other = db.connect(db.node_names[1])
        assert other.scalar("SELECT COUNT(*) FROM t") == 0
        session.execute("COMMIT")
        assert other.scalar("SELECT COUNT(*) FROM t") == 1

    def test_read_your_writes(self, session):
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        assert session.scalar("SELECT COUNT(*) FROM t") == 1
        session.execute("ROLLBACK")
        assert session.scalar("SELECT COUNT(*) FROM t") == 0

    def test_rollback_discards_updates(self, session):
        session.execute("INSERT INTO t VALUES (1, 'x')")
        session.execute("BEGIN")
        session.execute("UPDATE t SET b = 'y' WHERE a = 1")
        session.execute("ROLLBACK")
        assert session.scalar("SELECT b FROM t WHERE a = 1") == "x"

    def test_commit_is_atomic_multi_statement(self, session, db):
        other = db.connect(db.node_names[1])
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        session.execute("INSERT INTO t VALUES (2, 'y')")
        assert other.scalar("SELECT COUNT(*) FROM t") == 0
        session.execute("COMMIT")
        assert other.scalar("SELECT COUNT(*) FROM t") == 2

    def test_nested_begin_rejected(self, session):
        session.execute("BEGIN")
        with pytest.raises(TransactionError):
            session.execute("BEGIN")

    def test_commit_without_begin_is_noop(self, session):
        session.execute("COMMIT")  # must not raise

    def test_ddl_commits_open_transaction(self, session, db):
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        session.execute("CREATE TABLE t2 (a INTEGER)")  # DDL auto-commits
        other = db.connect(db.node_names[1])
        assert other.scalar("SELECT COUNT(*) FROM t") == 1

    def test_repeatable_reads_within_txn(self, session, db):
        session.execute("INSERT INTO t VALUES (1, 'x')")
        session.execute("BEGIN")
        assert session.scalar("SELECT COUNT(*) FROM t") == 1
        writer = db.connect(db.node_names[1])
        writer.execute("INSERT INTO t VALUES (2, 'y')")
        # Snapshot was pinned at first read.
        assert session.scalar("SELECT COUNT(*) FROM t") == 1
        session.execute("COMMIT")
        assert session.scalar("SELECT COUNT(*) FROM t") == 2


class TestLocking:
    def test_parallel_inserts_do_not_conflict(self, session, db):
        # Insert locks are shared: parallel COPY/INSERT transactions append
        # independent ROS containers (this is what parallel S2V relies on).
        other = db.connect(db.node_names[1])
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        other.execute("BEGIN")
        other.execute("INSERT INTO t VALUES (2, 'y')")
        session.execute("COMMIT")
        other.execute("COMMIT")
        assert session.scalar("SELECT COUNT(*) FROM t") == 2

    def test_updater_conflicts_with_inserter(self, session, db):
        other = db.connect(db.node_names[1])
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        with pytest.raises(LockContention):
            other.execute("UPDATE t SET b = 'z'")
        session.execute("COMMIT")
        other.execute("UPDATE t SET b = 'z'")  # lock released

    def test_updaters_conflict(self, session, db):
        session.execute("INSERT INTO t VALUES (1, 'x')")
        other = db.connect(db.node_names[1])
        session.execute("BEGIN")
        session.execute("UPDATE t SET b = 'y'")
        with pytest.raises(LockContention):
            other.execute("UPDATE t SET b = 'z'")
        session.execute("ROLLBACK")

    def test_readers_never_block(self, session, db):
        other = db.connect(db.node_names[1])
        session.execute("BEGIN")
        session.execute("UPDATE t SET b = 'z'")
        assert other.scalar("SELECT COUNT(*) FROM t") == 0  # MVCC read ok
        session.execute("ROLLBACK")

    def test_conditional_update_race(self, session, db):
        """The S2V leader election: exactly one conditional update wins."""
        session.execute("CREATE TABLE last_committer (task_id INTEGER)")
        session.execute("INSERT INTO last_committer VALUES (NULL)")
        s1 = db.connect(db.node_names[0])
        s2 = db.connect(db.node_names[1])
        r1 = s1.execute("UPDATE last_committer SET task_id = 1 WHERE task_id IS NULL")
        r2 = s2.execute("UPDATE last_committer SET task_id = 2 WHERE task_id IS NULL")
        assert (r1.rowcount, r2.rowcount) == (1, 0)
        assert session.scalar("SELECT task_id FROM last_committer") == 1

    def test_drop_of_locked_table_fails(self, session, db):
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        other = db.connect(db.node_names[1])
        with pytest.raises(LockContention):
            other.execute("DROP TABLE t")
        session.execute("COMMIT")

    def test_rename_of_locked_table_fails(self, session, db):
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        other = db.connect(db.node_names[1])
        with pytest.raises(LockContention):
            other.execute("ALTER TABLE t RENAME TO t9")
        session.execute("ROLLBACK")


class TestAtomicRename:
    def test_overwrite_pattern(self, session, db):
        """S2V overwrite mode: staging table atomically renamed to target."""
        session.execute("INSERT INTO t VALUES (1, 'old')")
        session.execute("CREATE TABLE staging (a INTEGER, b VARCHAR(20))")
        session.execute("INSERT INTO staging VALUES (2, 'new')")
        session.execute("DROP TABLE t")
        session.execute("ALTER TABLE staging RENAME TO t")
        result = session.execute("SELECT * FROM t")
        assert result.rows == [(2, "new")]

    def test_rename_to_existing_fails(self, session):
        from repro.vertica.errors import CatalogError

        session.execute("CREATE TABLE t2 (a INTEGER)")
        with pytest.raises(CatalogError):
            session.execute("ALTER TABLE t2 RENAME TO t")


class TestConnections:
    def test_connection_limit(self):
        db = VerticaDatabase(num_nodes=1, max_client_sessions=2)
        s1 = db.connect()
        s2 = db.connect()
        with pytest.raises(ConnectionLimitError):
            db.connect()
        s1.close()
        db.connect()  # slot freed

    def test_close_aborts_open_transaction(self, db):
        s = db.connect()
        s.execute("CREATE TABLE t (a INTEGER)")
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1)")
        s.close()
        other = db.connect()
        assert other.scalar("SELECT COUNT(*) FROM t") == 0

    def test_closed_session_rejects_statements(self, db):
        s = db.connect()
        s.close()
        with pytest.raises(TransactionError):
            s.execute("SELECT 1")

    def test_context_manager(self, db):
        with db.connect() as s:
            s.execute("SELECT 1")
        assert db.session_count(db.node_names[0]) == 0

    def test_connect_to_down_node_fails(self, db):
        from repro.vertica.errors import CatalogError

        db.fail_node(db.node_names[1])
        with pytest.raises(CatalogError):
            db.connect(db.node_names[1])


class TestKSafety:
    def test_replica_serves_reads_after_node_failure(self):
        db = VerticaDatabase(num_nodes=4, k_safety=1)
        s = db.connect()
        s.execute("CREATE TABLE t (a INTEGER) SEGMENTED BY HASH(a) ALL NODES")
        values = ", ".join(f"({i})" for i in range(100))
        s.execute(f"INSERT INTO t VALUES {values}")
        assert s.scalar("SELECT COUNT(*) FROM t") == 100
        db.fail_node(db.node_names[2])
        survivor = db.connect(db.node_names[0])
        assert survivor.scalar("SELECT COUNT(*) FROM t") == 100

    def test_no_replica_without_k_safety(self):
        db = VerticaDatabase(num_nodes=4, k_safety=0)
        s = db.connect()
        s.execute("CREATE TABLE t (a INTEGER) SEGMENTED BY HASH(a) ALL NODES")
        s.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5), (6), (7), (8)")
        db.fail_node(db.node_names[2])
        from repro.vertica.errors import CatalogError

        with pytest.raises(CatalogError):
            db.connect(db.node_names[0]).scalar("SELECT COUNT(*) FROM t")

    def test_k_safety_requires_two_nodes(self):
        from repro.vertica.errors import CatalogError

        with pytest.raises(CatalogError):
            VerticaDatabase(num_nodes=1, k_safety=1)
