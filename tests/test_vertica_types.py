"""Unit tests for SQL types."""

import pytest

from repro.vertica import FLOAT, INTEGER, BOOLEAN, VARCHAR, parse_type
from repro.vertica.errors import SqlError, TypeMismatchError


class TestInteger:
    def test_coerce_int(self):
        assert INTEGER.coerce(42) == 42

    def test_coerce_integral_float(self):
        assert INTEGER.coerce(42.0) == 42

    def test_coerce_none(self):
        assert INTEGER.coerce(None) is None

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(True)

    def test_rejects_fractional(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(1.5)

    def test_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce("1")

    def test_range_check(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(2**63)
        assert INTEGER.coerce(2**63 - 1) == 2**63 - 1

    def test_csv_round_trip(self):
        assert INTEGER.from_csv("123") == 123
        assert INTEGER.from_csv("") is None
        assert INTEGER.to_csv(123) == "123"
        assert INTEGER.to_csv(None) == ""

    def test_csv_garbage(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.from_csv("abc")


class TestFloat:
    def test_coerce(self):
        assert FLOAT.coerce(1) == 1.0
        assert FLOAT.coerce(2.5) == 2.5
        assert FLOAT.coerce(None) is None

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeMismatchError):
            FLOAT.coerce(False)
        with pytest.raises(TypeMismatchError):
            FLOAT.coerce("2.5")

    def test_csv(self):
        assert FLOAT.from_csv("2.5") == 2.5
        assert FLOAT.from_csv("1e3") == 1000.0
        assert FLOAT.to_csv(0.1) == repr(0.1)


class TestBoolean:
    @pytest.mark.parametrize("token,expected", [
        ("true", True), ("T", True), ("1", True), ("FALSE", False), ("f", False),
    ])
    def test_csv_tokens(self, token, expected):
        assert BOOLEAN.from_csv(token) is expected

    def test_csv_garbage(self):
        with pytest.raises(TypeMismatchError):
            BOOLEAN.from_csv("maybe")

    def test_coerce(self):
        assert BOOLEAN.coerce(True) is True
        with pytest.raises(TypeMismatchError):
            BOOLEAN.coerce(1)

    def test_to_csv(self):
        assert BOOLEAN.to_csv(True) == "true"
        assert BOOLEAN.to_csv(False) == "false"


class TestVarchar:
    def test_length_enforced(self):
        vc = VARCHAR(5)
        assert vc.coerce("hello") == "hello"
        with pytest.raises(TypeMismatchError):
            vc.coerce("hello!")

    def test_length_is_bytes(self):
        vc = VARCHAR(3)
        with pytest.raises(TypeMismatchError):
            vc.coerce("héé")  # 5 bytes in UTF-8

    def test_value_width_is_actual(self):
        vc = VARCHAR(100)
        assert vc.value_width("abc") == 3

    def test_rejects_non_string(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR(5).coerce(5)

    def test_invalid_length(self):
        with pytest.raises(SqlError):
            VARCHAR(0)


class TestParseType:
    @pytest.mark.parametrize("text,expected", [
        ("INTEGER", "INTEGER"),
        ("int", "INTEGER"),
        ("BIGINT", "INTEGER"),
        ("FLOAT", "FLOAT"),
        ("double", "FLOAT"),
        ("BOOLEAN", "BOOLEAN"),
        ("VARCHAR(17)", "VARCHAR(17)"),
        ("varchar", "VARCHAR(80)"),
    ])
    def test_names(self, text, expected):
        assert repr(parse_type(text)) == expected

    def test_unknown(self):
        with pytest.raises(SqlError):
            parse_type("GEOGRAPHY")

    def test_bad_varchar(self):
        with pytest.raises(SqlError):
            parse_type("VARCHAR(x)")
