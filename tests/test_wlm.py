"""Tests for repro.wlm: resource pools, admission control, session pooling."""

import pytest

from repro import telemetry
from repro.connector import SimVerticaCluster
from repro.connector.costmodel import VerticaCostModel
from repro.sim import Environment
from repro.sim.resources import PriorityResource
from repro.vertica import VerticaDatabase
from repro.vertica.errors import (
    AdmissionTimeout,
    CatalogError,
    ConnectionLimitError,
    SqlError,
)
from repro.wlm import (
    AdmissionController,
    GENERAL,
    ResourcePool,
    SessionPool,
    general_pool,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def db():
    return VerticaDatabase(num_nodes=3)


def run_process(env, gen):
    return env.run(env.process(gen))


# --------------------------------------------------------------- PriorityResource
class TestPriorityResource:
    def test_fifo_within_equal_priority(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(name):
            req = res.request()
            yield req
            order.append(name)
            yield env.timeout(1)
            res.release(req)

        for name in "abcd":
            env.process(worker(name))
        env.run()
        assert order == list("abcd")

    def test_higher_priority_jumps_queue(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(name, priority, delay):
            yield env.timeout(delay)
            req = res.request(priority=priority)
            yield req
            order.append(name)
            yield env.timeout(10)
            res.release(req)

        # "a" holds the resource; "low" queues first but "high" (arriving
        # later, higher priority) is granted ahead of it.
        env.process(worker("a", 0, 0))
        env.process(worker("low", 0, 1))
        env.process(worker("high", 5, 2))
        env.run()
        assert order == ["a", "high", "low"]

    def test_cancel_while_queued_returns_nothing(self, env):
        res = PriorityResource(env, capacity=1)
        hold = res.request()
        env.run()
        queued = res.request(priority=3)
        assert res.queue_length == 1
        res.release(queued)  # cancellation: never granted
        assert res.queue_length == 0
        res.release(hold)
        assert res.in_use == 0


# --------------------------------------------------------------- pool definitions
class TestResourcePool:
    def test_names_are_uppercased(self):
        pool = ResourcePool("ingest", cascade="general")
        assert pool.name == "INGEST"
        assert pool.cascade == "GENERAL"

    def test_memory_per_query_grant(self):
        pool = ResourcePool("p", memory_mb=4096, planned_concurrency=4,
                            max_concurrency=8)
        assert pool.memory_per_query_mb == 1024

    def test_validation(self):
        with pytest.raises(CatalogError):
            ResourcePool("p", memory_mb=0)
        with pytest.raises(CatalogError):
            ResourcePool("p", planned_concurrency=0)
        with pytest.raises(CatalogError):
            ResourcePool("p", planned_concurrency=8, max_concurrency=4)
        with pytest.raises(CatalogError):
            ResourcePool("p", queue_timeout=-1.0)
        with pytest.raises(CatalogError):
            ResourcePool("p", cascade="P")

    def test_catalog_crud_and_system_table(self, db):
        assert db.catalog.resource_pool(GENERAL) == general_pool()
        db.create_resource_pool(ResourcePool("etl", priority=5,
                                             cascade=GENERAL))
        with pytest.raises(CatalogError):
            db.create_resource_pool(ResourcePool("etl"))
        db.create_resource_pool(ResourcePool("etl", priority=7,
                                             cascade=GENERAL),
                                or_replace=True)
        assert db.catalog.resource_pool("ETL").priority == 7
        with pytest.raises(CatalogError):
            db.create_resource_pool(ResourcePool("bad", cascade="nosuch"))
        session = db.connect()
        result = session.execute(
            "SELECT pool_name, priority FROM v_catalog.resource_pools"
        )
        session.close()
        assert [row[0] for row in result.rows] == ["ETL", "GENERAL"]
        # GENERAL is undropable; a cascade target cannot be dropped
        with pytest.raises(CatalogError):
            db.catalog.drop_resource_pool(GENERAL)
        db.create_resource_pool(ResourcePool("leaf", cascade="ETL"))
        with pytest.raises(CatalogError):
            db.catalog.drop_resource_pool("ETL")
        db.catalog.drop_resource_pool("LEAF")
        db.catalog.drop_resource_pool("ETL")
        with pytest.raises(CatalogError):
            db.catalog.drop_resource_pool("ETL")
        db.catalog.drop_resource_pool("ETL", if_exists=True)

    def test_set_resource_pool_statement(self, db):
        db.create_resource_pool(ResourcePool("premium", priority=10))
        session = db.connect()
        assert session.resource_pool == GENERAL
        session.execute("SET RESOURCE_POOL = premium")
        assert session.resource_pool == "PREMIUM"
        with pytest.raises(CatalogError):
            session.execute("SET RESOURCE_POOL = nosuch")
        with pytest.raises(SqlError):
            session.execute("SET WALRUS = 1")
        session.reset()
        assert session.resource_pool == GENERAL
        session.close()


# --------------------------------------------------------------- admission control
class TestAdmission:
    def _controller(self, env, db, pool):
        db.create_resource_pool(pool)
        return AdmissionController(env, db.catalog)

    def test_admit_and_release(self, env, db):
        wlm = self._controller(
            env, db, ResourcePool("p", memory_mb=100, planned_concurrency=2,
                                  max_concurrency=2))

        def go():
            ticket = yield from wlm.admit("p")
            assert ticket.pool_name == "P"
            assert ticket.queue_wait == 0.0
            assert wlm.state("P").slots.in_use == 1
            assert wlm.state("P").memory.in_use == 50
            ticket.release()
            ticket.release()  # idempotent
            assert wlm.leaked() == {}

        run_process(env, go())

    def test_fifo_within_priority_under_contention(self, env, db):
        wlm = self._controller(
            env, db, ResourcePool("p", memory_mb=64, planned_concurrency=1,
                                  max_concurrency=1, queue_timeout=None))
        order = []

        def worker(name, delay):
            yield env.timeout(delay)
            ticket = yield from wlm.admit("p")
            order.append((name, env.now))
            yield env.timeout(5)
            ticket.release()

        for index, name in enumerate("abc"):
            env.process(worker(name, index * 0.1))
        env.run()
        assert [name for name, __ in order] == ["a", "b", "c"]
        assert wlm.leaked() == {}

    def test_queue_timeout_returns_slots_and_memory(self, env, db):
        wlm = self._controller(
            env, db, ResourcePool("p", memory_mb=64, planned_concurrency=1,
                                  max_concurrency=1, queue_timeout=2.0))
        outcome = {}

        def holder():
            ticket = yield from wlm.admit("p")
            yield env.timeout(10)
            ticket.release()

        def waiter():
            yield env.timeout(0.5)
            try:
                yield from wlm.admit("p")
            except AdmissionTimeout as exc:
                outcome["exc"] = exc
                outcome["at"] = env.now
                # the timed-out claims were fully cancelled: only the
                # holder's grant is outstanding, nothing is queued
                outcome["leaked"] = wlm.leaked()

        env.process(holder())
        env.process(waiter())
        env.run()
        exc = outcome["exc"]
        assert exc.pool == "p"
        assert exc.tried == ("P",)
        assert exc.waited == pytest.approx(2.0)
        assert outcome["at"] == pytest.approx(2.5)
        assert outcome["leaked"] == {"P": (1, 64, 0)}
        # ... and once the holder releases, nothing is held at all
        assert wlm.leaked() == {}

    def test_cascade_overflow(self, env, db):
        db.create_resource_pool(ResourcePool(
            "small", memory_mb=64, planned_concurrency=1, max_concurrency=1,
            queue_timeout=1.0, cascade=GENERAL))
        wlm = AdmissionController(env, db.catalog)
        pools = []

        def holder():
            ticket = yield from wlm.admit("small")
            yield env.timeout(10)
            ticket.release()

        def overflower():
            yield env.timeout(0.1)
            ticket = yield from wlm.admit("small")
            pools.append((ticket.pool_name, ticket.tried))
            ticket.release()

        env.process(holder())
        env.process(overflower())
        env.run()
        assert pools == [("GENERAL", ("SMALL", "GENERAL"))]
        assert wlm.leaked() == {}

    def test_cascade_cycle_raises_instead_of_spinning(self, env, db):
        db.create_resource_pool(ResourcePool(
            "b", memory_mb=64, planned_concurrency=1, max_concurrency=1,
            queue_timeout=0.5))
        db.create_resource_pool(ResourcePool(
            "a", memory_mb=64, planned_concurrency=1, max_concurrency=1,
            queue_timeout=0.5, cascade="b"))
        # close the loop: B now cascades back to A
        db.create_resource_pool(ResourcePool(
            "b", memory_mb=64, planned_concurrency=1, max_concurrency=1,
            queue_timeout=0.5, cascade="a"), or_replace=True)
        wlm = AdmissionController(env, db.catalog)

        def hold_both():
            one = yield from wlm.admit("a")
            two = yield from wlm.admit("b")
            yield env.timeout(10)
            one.release()
            two.release()

        outcome = {}

        def victim():
            yield env.timeout(0.1)
            try:
                yield from wlm.admit("a")
            except AdmissionTimeout as exc:
                outcome["tried"] = exc.tried

        env.process(hold_both())
        env.process(victim())
        env.run()
        assert outcome["tried"] == ("A", "B")


# --------------------------------------------------------------- session pooling
class TestSessionPool:
    def test_checkout_reuses_checked_in_sessions(self, db):
        pool = SessionPool(db, max_idle_per_node=2)
        session, reused = pool.checkout("node0001")
        assert not reused
        pool.checkin(session)
        assert pool.idle_count("node0001") == 1
        again, reused = pool.checkout("node0001")
        assert reused and again is session
        pool.checkin(again)
        pool.close_all()
        assert db.session_count("node0001") == 0

    def test_checkin_resets_session_state(self, db):
        db.create_resource_pool(ResourcePool("premium"))
        pool = SessionPool(db, max_idle_per_node=2)
        session, __ = pool.checkout("node0001", resource_pool="premium")
        assert session.resource_pool == "PREMIUM"
        pool.checkin(session)
        again, __ = pool.checkout("node0001")
        assert again.resource_pool == GENERAL
        pool.close_all()

    def test_idle_cap_evicts_overflow(self, db):
        pool = SessionPool(db, max_idle_per_node=1)
        first, __ = pool.checkout("node0001")
        second, __ = pool.checkout("node0001")
        pool.checkin(first)
        pool.checkin(second)
        assert pool.idle_count("node0001") == 1
        assert db.session_count("node0001") == 1
        pool.close_all()

    def test_down_node_idles_are_evicted(self, db):
        pool = SessionPool(db, max_idle_per_node=2, failover=True)
        session, __ = pool.checkout("node0001")
        pool.checkin(session)
        db.fail_node("node0001")
        replacement, reused = pool.checkout("node0001")
        assert not reused
        assert replacement.node != "node0001"
        assert pool.idle_count("node0001") == 0
        pool.checkin(replacement)
        pool.close_all()

    def test_failover_checkout_on_connection_limit(self):
        db = VerticaDatabase(num_nodes=2, max_client_sessions=1)
        pool = SessionPool(db, max_idle_per_node=2, failover=False)
        near = db.connect("node0001")  # saturate the target node
        far, __ = pool.checkout("node0002")
        pool.checkin(far)
        # node0001 is full and unpoolable, but node0002 has an idle session
        session, reused = pool.checkout("node0001")
        assert reused and session.node == "node0002"
        pool.checkin(session)
        pool.close_all()
        near.close()

    def test_connect_failover_when_node_full(self):
        db = VerticaDatabase(num_nodes=2, max_client_sessions=1)
        first = db.connect("node0001")
        with pytest.raises(ConnectionLimitError):
            db.connect("node0001")
        session = db.connect("node0001", failover=True)
        assert session.node == "node0002"
        session.close()
        first.close()


# --------------------------------------------------------------- bridge integration
BRIDGE_COST_MODEL = VerticaCostModel(
    connect_latency=0.01,
    query_latency=0.5,
    query_plan_cpu=0.0,
)


class TestBridgeAdmission:
    def _cluster(self, env):
        cluster = SimVerticaCluster(
            env=env, num_nodes=2, cost_model=BRIDGE_COST_MODEL, wlm=True,
            session_pool_size=2,
        )
        cluster.db.create_resource_pool(
            ResourcePool(GENERAL, memory_mb=64, planned_concurrency=1,
                         max_concurrency=1, queue_timeout=30.0),
            or_replace=True,
        )
        session = cluster.db.connect()
        session.execute("CREATE TABLE t (id INTEGER)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.close()
        return cluster

    def test_queue_wait_charged_into_cost_report(self, env):
        cluster = self._cluster(env)
        results = []

        def query():
            with cluster.connect("node0001") as conn:
                result = yield from conn.execute("SELECT * FROM t")
                results.append(result)

        env.process(query())
        env.process(query())
        env.run()
        assert len(results) == 2
        waits = sorted(r.cost.queue_wait_seconds for r in results)
        assert waits[0] == 0.0
        # the second statement queued behind the single-slot pool for
        # roughly the first one's execution time
        assert waits[1] == pytest.approx(0.5, abs=0.1)
        assert {r.cost.resource_pool for r in results} == {GENERAL}
        assert cluster.wlm.leaked() == {}
        snapshot = telemetry.get_registry().snapshot()
        # telemetry is disabled by default: instruments exist only when a
        # fabric installs an enabled registry
        assert snapshot.counters.get("wlm.admissions", 0) == 0

    def test_telemetry_counts_admissions(self):
        env = Environment()
        telemetry.install(telemetry.MetricsRegistry(enabled=True).bind(env))
        try:
            cluster = self._cluster(env)

            def query():
                with cluster.connect("node0001") as conn:
                    yield from conn.execute("SELECT * FROM t")

            env.process(query())
            env.process(query())
            env.run()
            snapshot = telemetry.get_registry().snapshot()
            assert snapshot.counters["wlm.admissions"] == 2.0
            waits = snapshot.histograms["wlm.queue_wait_seconds"]
            assert waits["count"] == 2
            assert waits["max"] > 0.0
            active = [name for name in snapshot.gauges
                      if name.startswith("db.sessions.active.")]
            assert active
        finally:
            telemetry.reset()

    def test_rejection_surfaces_as_admission_timeout(self, env):
        cluster = self._cluster(env)
        cluster.db.create_resource_pool(
            ResourcePool(GENERAL, memory_mb=64, planned_concurrency=1,
                         max_concurrency=1, queue_timeout=0.1),
            or_replace=True,
        )
        outcome = {}

        def slow():
            with cluster.connect("node0001") as conn:
                yield from conn.execute("SELECT * FROM t")

        def rejected():
            yield env.timeout(0.01)
            with cluster.connect("node0001") as conn:
                try:
                    yield from conn.execute("SELECT * FROM t")
                except AdmissionTimeout as exc:
                    outcome["exc"] = exc

        env.process(slow())
        env.process(rejected())
        env.run()
        assert "exc" in outcome
        assert cluster.wlm.leaked() == {}
