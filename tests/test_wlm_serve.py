"""End-to-end tests for the multi-tenant concurrent serving driver."""

from repro.bench.concurrent_serve import run_comparison, run_serve


class TestConcurrentServe:
    def test_shared_run_is_clean_and_queues(self):
        report = run_serve(tenants=4, ops=6, premium=False)
        assert report.ok, report.describe()
        # every tenant made progress and nobody silently lost work
        for stats in report.tenants:
            assert stats.completed + stats.rejections + stats.failures == 6
        assert sum(s.completed for s in report.tenants) > 0
        # the congested GENERAL pool made statements actually queue, and
        # the wait is visible in telemetry
        waits = report.snapshot.histograms["wlm.queue_wait_seconds"]
        assert waits["count"] > 0
        assert waits["max"] > 0.0
        assert report.snapshot.counters["wlm.admissions"] > 0
        # the session pool was exercised (reuse, not just fresh connects)
        assert report.snapshot.counters["wlm.sessions.reused"] > 0
        # per-node active-session gauges were sampled into the snapshot
        active = [name for name in report.snapshot.gauges
                  if name.startswith("db.sessions.active.")]
        assert active
        assert "no-leaked-pool-slots" in report.report.checks

    def test_premium_pool_isolates_tenant_zero(self):
        reports = run_comparison(tenants=4, ops=6)
        assert reports["shared"].ok, reports["shared"].describe()
        assert reports["pools"].ok, reports["pools"].describe()
        shared_p95 = reports["shared"].tenant(0).p95
        premium_p95 = reports["pools"].tenant(0).p95
        assert reports["pools"].tenant(0).pool == "PREMIUM"
        assert premium_p95 < shared_p95, (
            f"premium p95 {premium_p95:.3f}s should beat shared "
            f"{shared_p95:.3f}s"
        )

    def test_runs_are_deterministic(self):
        first = run_serve(tenants=3, ops=3)
        again = run_serve(tenants=3, ops=3)
        assert first.elapsed == again.elapsed
        for a, b in zip(first.tenants, again.tenants):
            assert a.latencies == b.latencies
            assert a.rejections == b.rejections
